#include "tools/tracecat/tracecat.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/checkpoint.h"
#include "common/deadline.h"
#include "common/jsonl.h"
#include "common/string_util.h"
#include "obs/journal.h"

namespace isum::tracecat {

namespace {

/// Strips whitespace and a trailing comma from one raw trace line.
std::string CleanLine(const std::string& raw) {
  std::string line(Trim(raw));
  if (!line.empty() && line.back() == ',') line.pop_back();
  return line;
}

/// args.name of a thread_name metadata event. The top-level "name" key is
/// "thread_name" itself, so the flat extractor cannot reach it; the args
/// object is the only nested value the exporter writes.
StatusOr<std::string> MetadataThreadName(const std::string& line) {
  const std::string needle = "\"args\":{\"name\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return Status::ParseError("metadata event without args.name: " + line);
  }
  return JsonExtractString(line.substr(pos + 8), "name");
}

}  // namespace

StatusOr<std::vector<TraceEvent>> ParseChromeTrace(
    const std::string& content) {
  std::vector<TraceEvent> events;
  std::istringstream in(content);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string line = CleanLine(raw);
    if (line.empty() || line == "[" || line == "]") continue;
    if (line.front() != '{') {
      return Status::ParseError("unexpected trace line: " + line);
    }
    TraceEvent event;
    auto phase = JsonExtractString(line, "ph");
    if (!phase.ok()) return phase.status();
    event.phase = phase.value();
    auto tid = JsonExtractNumber(line, "tid");
    if (!tid.ok()) return tid.status();
    event.tid = static_cast<uint32_t>(tid.value());
    if (event.phase == "M") {
      auto name = MetadataThreadName(line);
      if (!name.ok()) return name.status();
      event.thread_name = name.value();
      event.name = "thread_name";
    } else if (event.phase == "X") {
      auto name = JsonExtractString(line, "name");
      if (!name.ok()) return name.status();
      event.name = name.value();
      auto ts = JsonExtractNumber(line, "ts");
      if (!ts.ok()) return ts.status();
      event.ts_us = ts.value();
      auto dur = JsonExtractNumber(line, "dur");
      if (!dur.ok()) return dur.status();
      event.dur_us = dur.value();
    } else {
      return Status::ParseError("unsupported event phase: " + event.phase);
    }
    events.push_back(std::move(event));
  }
  return events;
}

std::vector<PhaseStat> AggregatePhases(const std::vector<TraceEvent>& events) {
  std::vector<PhaseStat> stats;
  for (const TraceEvent& e : events) {
    if (e.phase != "X") continue;
    PhaseStat* stat = nullptr;
    for (PhaseStat& s : stats) {
      if (s.name == e.name) {
        stat = &s;
        break;
      }
    }
    if (stat == nullptr) {
      stats.push_back(PhaseStat{e.name, 0, 0.0, 0.0});
      stat = &stats.back();
    }
    ++stat->count;
    stat->total_us += e.dur_us;
    stat->max_us = std::max(stat->max_us, e.dur_us);
  }
  std::sort(stats.begin(), stats.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;
            });
  return stats;
}

std::vector<TraceEvent> TopSlowest(const std::vector<TraceEvent>& events,
                                   size_t k) {
  std::vector<TraceEvent> spans;
  for (const TraceEvent& e : events) {
    if (e.phase == "X") spans.push_back(e);
  }
  std::sort(spans.begin(), spans.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.name < b.name;
            });
  if (spans.size() > k) spans.resize(k);
  return spans;
}

StatusOr<std::vector<MetricLine>> ParseMetricsJsonl(
    const std::string& content) {
  std::vector<MetricLine> metrics;
  std::istringstream in(content);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string line = CleanLine(raw);
    if (line.empty()) continue;
    MetricLine m;
    auto type = JsonExtractString(line, "type");
    if (!type.ok()) return type.status();
    m.type = type.value();
    auto name = JsonExtractString(line, "name");
    if (!name.ok()) return name.status();
    m.name = name.value();
    if (m.type == "histogram") {
      auto count = JsonExtractNumber(line, "count");
      if (!count.ok()) return count.status();
      m.count = static_cast<uint64_t>(count.value());
      auto sum = JsonExtractNumber(line, "sum");
      if (!sum.ok()) return sum.status();
      m.sum = static_cast<uint64_t>(sum.value());
      auto p50 = JsonExtractNumber(line, "p50");
      if (!p50.ok()) return p50.status();
      m.p50 = p50.value();
      auto p95 = JsonExtractNumber(line, "p95");
      if (!p95.ok()) return p95.status();
      m.p95 = p95.value();
      auto p99 = JsonExtractNumber(line, "p99");
      if (!p99.ok()) return p99.status();
      m.p99 = p99.value();
    } else {
      auto value = JsonExtractNumber(line, "value");
      if (!value.ok()) return value.status();
      m.value = value.value();
    }
    metrics.push_back(std::move(m));
  }
  return metrics;
}

namespace {

const MetricLine* FindMetric(const std::vector<MetricLine>& metrics,
                             const std::string& type,
                             const std::string& name) {
  for (const MetricLine& m : metrics) {
    if (m.type == type && m.name == name) return &m;
  }
  return nullptr;
}

std::string HumanUs(double us) {
  if (us >= 1e6) return StrFormat("%.2fs", us / 1e6);
  if (us >= 1e3) return StrFormat("%.2fms", us / 1e3);
  return StrFormat("%.1fus", us);
}

}  // namespace

std::string Report(const std::vector<TraceEvent>& events,
                   const std::vector<MetricLine>& metrics, size_t top_k) {
  std::string out;

  const std::vector<PhaseStat> phases = AggregatePhases(events);
  out += "== per-phase totals ==\n";
  if (phases.empty()) {
    out += "(no spans)\n";
  } else {
    out += StrFormat("%-32s %8s %12s %12s %12s\n", "phase", "count", "total",
                     "mean", "max");
    for (const PhaseStat& p : phases) {
      out += StrFormat(
          "%-32s %8llu %12s %12s %12s\n", p.name.c_str(),
          static_cast<unsigned long long>(p.count), HumanUs(p.total_us).c_str(),
          HumanUs(p.total_us / static_cast<double>(p.count)).c_str(),
          HumanUs(p.max_us).c_str());
    }
  }

  const std::vector<TraceEvent> slowest = TopSlowest(events, top_k);
  if (!slowest.empty()) {
    out += StrFormat("\n== top %zu slowest spans ==\n", slowest.size());
    out += StrFormat("%-32s %6s %14s %12s\n", "span", "tid", "start", "dur");
    for (const TraceEvent& e : slowest) {
      out += StrFormat("%-32s %6u %14s %12s\n", e.name.c_str(), e.tid,
                       HumanUs(e.ts_us).c_str(), HumanUs(e.dur_us).c_str());
    }
  }

  const MetricLine* calls =
      FindMetric(metrics, "counter", "whatif.optimizer_calls");
  const MetricLine* hits = FindMetric(metrics, "counter", "whatif.cache_hits");
  const MetricLine* lat =
      FindMetric(metrics, "histogram", "whatif.optimize_nanos");
  if (calls != nullptr || hits != nullptr) {
    const double n_calls = calls != nullptr ? calls->value : 0.0;
    const double n_hits = hits != nullptr ? hits->value : 0.0;
    const double total = n_calls + n_hits;
    out += "\n== what-if optimizer ==\n";
    out += StrFormat("optimizer calls: %.0f\n", n_calls);
    out += StrFormat("cache hits:      %.0f\n", n_hits);
    out += StrFormat("hit rate:        %.1f%%\n",
                     total > 0.0 ? 100.0 * n_hits / total : 0.0);
    if (lat != nullptr && lat->count > 0) {
      out += StrFormat("optimize latency: p50 %s  p95 %s  p99 %s\n",
                       HumanUs(lat->p50 / 1e3).c_str(),
                       HumanUs(lat->p95 / 1e3).c_str(),
                       HumanUs(lat->p99 / 1e3).c_str());
    }
  }

  // Robustness counters (docs/ROBUSTNESS.md): only reported when the run
  // recorded any, so fault-free traces stay unchanged.
  const MetricLine* injected = FindMetric(metrics, "counter", "fault.injected");
  const MetricLine* retries = FindMetric(metrics, "counter", "retry.attempts");
  const MetricLine* deadline =
      FindMetric(metrics, "counter", "deadline.exceeded");
  const double n_injected = injected != nullptr ? injected->value : 0.0;
  const double n_retries = retries != nullptr ? retries->value : 0.0;
  const double n_deadline = deadline != nullptr ? deadline->value : 0.0;
  if (n_injected > 0.0 || n_retries > 0.0 || n_deadline > 0.0) {
    out += "\n== robustness ==\n";
    out += StrFormat("faults injected:   %.0f\n", n_injected);
    out += StrFormat("retry attempts:    %.0f\n", n_retries);
    out += StrFormat("deadline exceeded: %.0f\n", n_deadline);
  }
  return out;
}

namespace {

/// Does a cleaned bench line carry this scalar key? The emitter writes one
/// key per line, so a prefix check is unambiguous.
bool LineHasKey(const std::string& line, const char* key) {
  const std::string prefix = std::string("\"") + key + "\":";
  return line.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

StatusOr<std::vector<BenchRecord>> ParseBenchJson(const std::string& content) {
  // Line state machine matching bench_util.h's RenderBenchJson layout: a
  // record is `{`, one scalar per line, then the phases/counters/runs
  // sections, then `}`. A trajectory file wraps records in a JSON array.
  enum class Section { kTopLevel, kScalars, kPhases, kCounters, kRuns };
  Section section = Section::kTopLevel;

  std::vector<BenchRecord> records;
  BenchRecord record;
  bool saw_schema = false;
  bool saw_wall = false;
  bool saw_rss = false;

  std::istringstream in(content);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string line = CleanLine(raw);
    if (line.empty()) continue;
    switch (section) {
      case Section::kTopLevel:
        if (line == "[" || line == "]") break;  // trajectory array brackets
        if (line == "{") {
          record = BenchRecord();
          saw_schema = saw_wall = saw_rss = false;
          section = Section::kScalars;
          break;
        }
        return Status::ParseError("unexpected bench line: " + line);
      case Section::kScalars: {
        if (line == "}") {
          if (!saw_schema) {
            return Status::ParseError("bench record without schema tag");
          }
          if (!saw_wall || !saw_rss) {
            return Status::ParseError(
                "bench record missing wall_seconds/peak_rss_bytes");
          }
          records.push_back(std::move(record));
          section = Section::kTopLevel;
          break;
        }
        if (line == "\"phases\": [") {
          section = Section::kPhases;
          break;
        }
        if (line == "\"counters\": [") {
          section = Section::kCounters;
          break;
        }
        if (line == "\"runs\": [") {
          section = Section::kRuns;
          break;
        }
        if (LineHasKey(line, "schema")) {
          auto schema = JsonExtractString(line, "schema");
          if (!schema.ok()) return schema.status();
          if (schema.value() != "isum-bench-v1") {
            return Status::ParseError("unsupported bench schema: " +
                                      schema.value());
          }
          saw_schema = true;
        } else if (LineHasKey(line, "label")) {
          auto v = JsonExtractString(line, "label");
          if (!v.ok()) return v.status();
          record.label = v.value();
        } else if (LineHasKey(line, "bench")) {
          auto v = JsonExtractString(line, "bench");
          if (!v.ok()) return v.status();
          record.bench = v.value();
        } else if (LineHasKey(line, "git_rev")) {
          auto v = JsonExtractString(line, "git_rev");
          if (!v.ok()) return v.status();
          record.git_rev = v.value();
        } else if (LineHasKey(line, "wall_seconds")) {
          auto v = JsonExtractNumber(line, "wall_seconds");
          if (!v.ok()) return v.status();
          record.wall_seconds = v.value();
          saw_wall = true;
        } else if (LineHasKey(line, "peak_rss_bytes")) {
          auto v = JsonExtractNumber(line, "peak_rss_bytes");
          if (!v.ok()) return v.status();
          record.peak_rss_bytes = static_cast<uint64_t>(v.value());
          saw_rss = true;
        } else {
          return Status::ParseError("unknown bench scalar line: " + line);
        }
        break;
      }
      case Section::kPhases: {
        if (line == "]") {
          section = Section::kScalars;
          break;
        }
        PhaseStat phase;
        auto name = JsonExtractString(line, "name");
        if (!name.ok()) return name.status();
        phase.name = name.value();
        auto count = JsonExtractNumber(line, "count");
        if (!count.ok()) return count.status();
        phase.count = static_cast<uint64_t>(count.value());
        auto total = JsonExtractNumber(line, "total_us");
        if (!total.ok()) return total.status();
        phase.total_us = total.value();
        auto max = JsonExtractNumber(line, "max_us");
        if (!max.ok()) return max.status();
        phase.max_us = max.value();
        record.phases.push_back(std::move(phase));
        break;
      }
      case Section::kCounters: {
        if (line == "]") {
          section = Section::kScalars;
          break;
        }
        auto name = JsonExtractString(line, "name");
        if (!name.ok()) return name.status();
        auto value = JsonExtractNumber(line, "value");
        if (!value.ok()) return value.status();
        record.counters.emplace_back(name.value(), value.value());
        break;
      }
      case Section::kRuns: {
        if (line == "]") {
          section = Section::kScalars;
          break;
        }
        auto name = JsonExtractString(line, "name");
        if (!name.ok()) return name.status();
        record.run_names.push_back(name.value());
        break;
      }
    }
  }
  if (section != Section::kTopLevel) {
    return Status::ParseError("unterminated bench record");
  }
  if (records.empty()) {
    return Status::ParseError("no bench records found");
  }
  return records;
}

std::string BenchDelta(const BenchRecord& from, const BenchRecord& to) {
  std::string out;
  out += StrFormat("== bench delta: %s (%s) -> %s (%s) ==\n",
                   from.label.c_str(), from.git_rev.c_str(), to.label.c_str(),
                   to.git_rev.c_str());
  out += StrFormat("%-32s %12s %12s %10s\n", "phase", "from", "to", "delta");

  // Union of phase names, `from`'s order first so the dominant phases of the
  // baseline lead the table; phases new in `to` follow in `to`'s order.
  auto find = [](const std::vector<PhaseStat>& phases,
                 const std::string& name) -> const PhaseStat* {
    for (const PhaseStat& p : phases) {
      if (p.name == name) return &p;
    }
    return nullptr;
  };
  auto row = [&](const std::string& name, const PhaseStat* a,
                 const PhaseStat* b) {
    std::string delta = "-";
    if (a != nullptr && b != nullptr && a->total_us > 0.0) {
      delta = StrFormat("%+.1f%%",
                        100.0 * (b->total_us - a->total_us) / a->total_us);
    }
    out += StrFormat("%-32s %12s %12s %10s\n", name.c_str(),
                     a != nullptr ? HumanUs(a->total_us).c_str() : "-",
                     b != nullptr ? HumanUs(b->total_us).c_str() : "-",
                     delta.c_str());
  };
  for (const PhaseStat& p : from.phases) {
    row(p.name, &p, find(to.phases, p.name));
  }
  for (const PhaseStat& p : to.phases) {
    if (find(from.phases, p.name) == nullptr) row(p.name, nullptr, &p);
  }

  std::string wall_delta;
  if (from.wall_seconds > 0.0) {
    wall_delta = StrFormat(
        " (%+.1f%%)",
        100.0 * (to.wall_seconds - from.wall_seconds) / from.wall_seconds);
  }
  out += StrFormat("wall: %.2fs -> %.2fs%s\n", from.wall_seconds,
                   to.wall_seconds, wall_delta.c_str());
  return out;
}

namespace {

std::string HumanBytes(double bytes) {
  if (bytes >= 1024.0 * 1024.0 * 1024.0) {
    return StrFormat("%.2fGiB", bytes / (1024.0 * 1024.0 * 1024.0));
  }
  if (bytes >= 1024.0 * 1024.0) {
    return StrFormat("%.1fMiB", bytes / (1024.0 * 1024.0));
  }
  if (bytes >= 1024.0) return StrFormat("%.1fKiB", bytes / 1024.0);
  return StrFormat("%.0fB", bytes);
}

}  // namespace

Status CheckBenchRss(const std::vector<BenchRecord>& records,
                     double tolerance_percent) {
  if (records.size() < 2) return Status::OK();
  const BenchRecord& from = records.front();
  const BenchRecord& to = records.back();
  if (from.peak_rss_bytes == 0) return Status::OK();
  const double growth_percent =
      100.0 * (static_cast<double>(to.peak_rss_bytes) -
               static_cast<double>(from.peak_rss_bytes)) /
      static_cast<double>(from.peak_rss_bytes);
  if (growth_percent > tolerance_percent) {
    return Status::InvalidArgument(StrFormat(
        "peak RSS regression: %s (%s) -> %s (%s) is %+.1f%%, tolerance "
        "+%.1f%%",
        HumanBytes(static_cast<double>(from.peak_rss_bytes)).c_str(),
        from.git_rev.c_str(),
        HumanBytes(static_cast<double>(to.peak_rss_bytes)).c_str(),
        to.git_rev.c_str(), growth_percent, tolerance_percent));
  }
  return Status::OK();
}

// ---- sampling profiles ----

StatusOr<ProfileRecord> ParseProfileJson(const std::string& content) {
  // Line state machine matching obs::ProfileJson's layout, the same
  // discipline as ParseBenchJson: `{`, one scalar per line, then the
  // phases/frames/alloc_phases sections, then `}`.
  enum class Section { kTopLevel, kScalars, kPhases, kFrames, kAllocPhases };
  Section section = Section::kTopLevel;

  ProfileRecord record;
  bool saw_record = false;
  bool saw_schema = false;
  bool saw_samples = false;
  bool saw_attributed = false;

  std::istringstream in(content);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string line = CleanLine(raw);
    if (line.empty()) continue;
    switch (section) {
      case Section::kTopLevel:
        if (line == "{") {
          if (saw_record) {
            return Status::ParseError(
                "multiple profile records in one file");
          }
          section = Section::kScalars;
          break;
        }
        return Status::ParseError("unexpected profile line: " + line);
      case Section::kScalars: {
        if (line == "}") {
          if (!saw_schema) {
            return Status::ParseError("profile record without schema tag");
          }
          if (!saw_samples || !saw_attributed) {
            return Status::ParseError(
                "profile record missing samples/attributed_samples");
          }
          saw_record = true;
          section = Section::kTopLevel;
          break;
        }
        if (line == "\"phases\": [") {
          section = Section::kPhases;
          break;
        }
        if (line == "\"frames\": [") {
          section = Section::kFrames;
          break;
        }
        if (line == "\"alloc_phases\": [") {
          section = Section::kAllocPhases;
          break;
        }
        auto scalar_string = [&](const char* key,
                                 std::string* out) -> StatusOr<bool> {
          if (!LineHasKey(line, key)) return false;
          auto v = JsonExtractString(line, key);
          if (!v.ok()) return v.status();
          *out = v.value();
          return true;
        };
        auto scalar_number = [&](const char* key,
                                 double* out) -> StatusOr<bool> {
          if (!LineHasKey(line, key)) return false;
          auto v = JsonExtractNumber(line, key);
          if (!v.ok()) return v.status();
          *out = v.value();
          return true;
        };
        if (LineHasKey(line, "schema")) {
          auto schema = JsonExtractString(line, "schema");
          if (!schema.ok()) return schema.status();
          if (schema.value() != "isum-profile-v1") {
            return Status::ParseError("unsupported profile schema: " +
                                      schema.value());
          }
          saw_schema = true;
          break;
        }
        double number = 0.0;
        StatusOr<bool> handled = scalar_string("label", &record.label);
        if (!handled.ok()) return handled.status();
        if (handled.value()) break;
        handled = scalar_string("bench", &record.bench);
        if (!handled.ok()) return handled.status();
        if (handled.value()) break;
        handled = scalar_string("git_rev", &record.git_rev);
        if (!handled.ok()) return handled.status();
        if (handled.value()) break;
        if (LineHasKey(line, "sample_hz")) {
          handled = scalar_number("sample_hz", &number);
          if (!handled.ok()) return handled.status();
          record.sample_hz = static_cast<int>(number);
          break;
        }
        handled = scalar_number("wall_seconds", &record.wall_seconds);
        if (!handled.ok()) return handled.status();
        if (handled.value()) break;
        if (LineHasKey(line, "samples")) {
          handled = scalar_number("samples", &number);
          if (!handled.ok()) return handled.status();
          record.samples = static_cast<uint64_t>(number);
          saw_samples = true;
          break;
        }
        if (LineHasKey(line, "dropped")) {
          handled = scalar_number("dropped", &number);
          if (!handled.ok()) return handled.status();
          record.dropped = static_cast<uint64_t>(number);
          break;
        }
        if (LineHasKey(line, "attributed_samples")) {
          handled = scalar_number("attributed_samples", &number);
          if (!handled.ok()) return handled.status();
          record.attributed_samples = static_cast<uint64_t>(number);
          saw_attributed = true;
          break;
        }
        handled =
            scalar_number("attributed_percent", &record.attributed_percent);
        if (!handled.ok()) return handled.status();
        if (handled.value()) break;
        if (LineHasKey(line, "alloc_enabled")) {
          handled = scalar_number("alloc_enabled", &number);
          if (!handled.ok()) return handled.status();
          record.alloc_enabled = number != 0.0;
          break;
        }
        if (LineHasKey(line, "alloc_total_bytes")) {
          handled = scalar_number("alloc_total_bytes", &number);
          if (!handled.ok()) return handled.status();
          record.alloc_total_bytes = static_cast<uint64_t>(number);
          break;
        }
        if (LineHasKey(line, "alloc_total_count")) {
          handled = scalar_number("alloc_total_count", &number);
          if (!handled.ok()) return handled.status();
          record.alloc_total_count = static_cast<uint64_t>(number);
          break;
        }
        if (LineHasKey(line, "alloc_live_bytes")) {
          handled = scalar_number("alloc_live_bytes", &number);
          if (!handled.ok()) return handled.status();
          record.alloc_live_bytes = static_cast<int64_t>(number);
          break;
        }
        if (LineHasKey(line, "alloc_peak_bytes")) {
          handled = scalar_number("alloc_peak_bytes", &number);
          if (!handled.ok()) return handled.status();
          record.alloc_peak_bytes = static_cast<uint64_t>(number);
          break;
        }
        return Status::ParseError("unknown profile scalar line: " + line);
      }
      case Section::kPhases: {
        if (line == "]") {
          section = Section::kScalars;
          break;
        }
        ProfilePhaseStat phase;
        auto name = JsonExtractString(line, "name");
        if (!name.ok()) return name.status();
        phase.name = name.value();
        auto samples = JsonExtractNumber(line, "samples");
        if (!samples.ok()) return samples.status();
        phase.samples = static_cast<uint64_t>(samples.value());
        auto percent = JsonExtractNumber(line, "percent");
        if (!percent.ok()) return percent.status();
        phase.percent = percent.value();
        record.phases.push_back(std::move(phase));
        break;
      }
      case Section::kFrames: {
        if (line == "]") {
          section = Section::kScalars;
          break;
        }
        ProfileFrameStat frame;
        auto name = JsonExtractString(line, "name");
        if (!name.ok()) return name.status();
        frame.name = name.value();
        auto self = JsonExtractNumber(line, "self");
        if (!self.ok()) return self.status();
        frame.self = static_cast<uint64_t>(self.value());
        auto total = JsonExtractNumber(line, "total");
        if (!total.ok()) return total.status();
        frame.total = static_cast<uint64_t>(total.value());
        record.frames.push_back(std::move(frame));
        break;
      }
      case Section::kAllocPhases: {
        if (line == "]") {
          section = Section::kScalars;
          break;
        }
        ProfileAllocStat alloc;
        auto name = JsonExtractString(line, "name");
        if (!name.ok()) return name.status();
        alloc.name = name.value();
        auto bytes = JsonExtractNumber(line, "bytes");
        if (!bytes.ok()) return bytes.status();
        alloc.bytes = static_cast<uint64_t>(bytes.value());
        auto count = JsonExtractNumber(line, "count");
        if (!count.ok()) return count.status();
        alloc.count = static_cast<uint64_t>(count.value());
        record.alloc_phases.push_back(std::move(alloc));
        break;
      }
    }
  }
  if (section != Section::kTopLevel) {
    return Status::ParseError("unterminated profile record");
  }
  if (!saw_record) {
    return Status::ParseError("no profile record found");
  }
  return record;
}

std::string ProfileReport(const ProfileRecord& record, size_t top_k) {
  std::string out;
  out += StrFormat("== profile: %s / %s (%s) ==\n", record.bench.c_str(),
                   record.label.c_str(), record.git_rev.c_str());
  out += StrFormat(
      "%llu sample(s) at %d Hz over %.2fs wall (%llu dropped), "
      "%.1f%% attributed to a phase\n",
      static_cast<unsigned long long>(record.samples), record.sample_hz,
      record.wall_seconds, static_cast<unsigned long long>(record.dropped),
      record.attributed_percent);

  out += "\n== per-phase samples ==\n";
  if (record.phases.empty()) {
    out += "(no samples)\n";
  } else {
    out += StrFormat("%-40s %10s %8s\n", "phase", "samples", "share");
    for (const ProfilePhaseStat& p : record.phases) {
      out += StrFormat("%-40s %10llu %7.1f%%\n", p.name.c_str(),
                       static_cast<unsigned long long>(p.samples), p.percent);
    }
  }

  if (!record.frames.empty()) {
    const size_t n = std::min(top_k, record.frames.size());
    out += StrFormat("\n== top %zu frames by self samples ==\n", n);
    out += StrFormat("%-56s %8s %8s\n", "frame", "self", "total");
    for (size_t i = 0; i < n; ++i) {
      const ProfileFrameStat& f = record.frames[i];
      out += StrFormat("%-56s %8llu %8llu\n", f.name.c_str(),
                       static_cast<unsigned long long>(f.self),
                       static_cast<unsigned long long>(f.total));
    }
  }

  if (record.alloc_enabled) {
    out += "\n== allocations ==\n";
    out += StrFormat(
        "total: %s in %llu allocation(s); peak %s, live at stop %s%s\n",
        HumanBytes(static_cast<double>(record.alloc_total_bytes)).c_str(),
        static_cast<unsigned long long>(record.alloc_total_count),
        HumanBytes(static_cast<double>(record.alloc_peak_bytes)).c_str(),
        HumanBytes(std::abs(static_cast<double>(record.alloc_live_bytes)))
            .c_str(),
        record.alloc_live_bytes < 0 ? " (net freed)" : "");
    if (!record.alloc_phases.empty()) {
      out += StrFormat("%-40s %12s %10s\n", "phase", "bytes", "count");
      for (const ProfileAllocStat& a : record.alloc_phases) {
        out += StrFormat("%-40s %12s %10llu\n", a.name.c_str(),
                         HumanBytes(static_cast<double>(a.bytes)).c_str(),
                         static_cast<unsigned long long>(a.count));
      }
    }
  }
  return out;
}

StatusOr<size_t> CheckProfile(const ProfileRecord& record,
                              double min_attributed_percent) {
  if (record.sample_hz <= 0) {
    return Status::InvalidArgument(
        StrFormat("non-positive sample_hz: %d", record.sample_hz));
  }
  if (record.attributed_samples > record.samples) {
    return Status::InvalidArgument(StrFormat(
        "attributed_samples %llu exceeds samples %llu",
        static_cast<unsigned long long>(record.attributed_samples),
        static_cast<unsigned long long>(record.samples)));
  }
  // The emitter computes attributed_percent from the two counts; a
  // mismatch means the record was edited or truncated.
  const double expected =
      record.samples > 0
          ? 100.0 * static_cast<double>(record.attributed_samples) /
                static_cast<double>(record.samples)
          : 0.0;
  if (std::abs(expected - record.attributed_percent) > 0.05) {
    return Status::InvalidArgument(StrFormat(
        "attributed_percent %.2f inconsistent with %llu/%llu samples",
        record.attributed_percent,
        static_cast<unsigned long long>(record.attributed_samples),
        static_cast<unsigned long long>(record.samples)));
  }
  uint64_t phase_samples = 0;
  for (const ProfilePhaseStat& p : record.phases) phase_samples += p.samples;
  if (phase_samples != record.samples) {
    return Status::InvalidArgument(
        StrFormat("phase samples sum to %llu, record has %llu",
                  static_cast<unsigned long long>(phase_samples),
                  static_cast<unsigned long long>(record.samples)));
  }
  if (record.attributed_percent < min_attributed_percent) {
    return Status::InvalidArgument(StrFormat(
        "only %.1f%% of samples attributed to a phase (minimum %.1f%%): "
        "is the tracer enabled and the workload instrumented?",
        record.attributed_percent, min_attributed_percent));
  }
  return static_cast<size_t>(record.samples);
}

std::string ProfileDiff(const ProfileRecord& from, const ProfileRecord& to,
                        size_t top_k) {
  std::string out;
  out += StrFormat("== profile delta: %s (%s) -> %s (%s) ==\n",
                   from.label.c_str(), from.git_rev.c_str(), to.label.c_str(),
                   to.git_rev.c_str());

  // Shares, not raw counts: the two runs can differ in length and rate.
  out += StrFormat("%-40s %8s %8s %8s\n", "phase", "from", "to", "delta");
  auto find_phase = [](const std::vector<ProfilePhaseStat>& phases,
                       const std::string& name) -> const ProfilePhaseStat* {
    for (const ProfilePhaseStat& p : phases) {
      if (p.name == name) return &p;
    }
    return nullptr;
  };
  auto phase_row = [&](const std::string& name, const ProfilePhaseStat* a,
                       const ProfilePhaseStat* b) {
    const double pa = a != nullptr ? a->percent : 0.0;
    const double pb = b != nullptr ? b->percent : 0.0;
    out += StrFormat("%-40s %7.1f%% %7.1f%% %+7.1f%%\n", name.c_str(), pa, pb,
                     pb - pa);
  };
  for (const ProfilePhaseStat& p : from.phases) {
    phase_row(p.name, &p, find_phase(to.phases, p.name));
  }
  for (const ProfilePhaseStat& p : to.phases) {
    if (find_phase(from.phases, p.name) == nullptr) {
      phase_row(p.name, nullptr, &p);
    }
  }

  // Frames by largest absolute self-share movement.
  struct FrameDelta {
    std::string name;
    double from_share = 0.0;
    double to_share = 0.0;
  };
  auto share = [](uint64_t self, uint64_t samples) {
    return samples > 0
               ? 100.0 * static_cast<double>(self) /
                     static_cast<double>(samples)
               : 0.0;
  };
  std::vector<FrameDelta> deltas;
  auto delta_row = [&](const std::string& name) -> FrameDelta& {
    for (FrameDelta& d : deltas) {
      if (d.name == name) return d;
    }
    deltas.push_back(FrameDelta{name, 0.0, 0.0});
    return deltas.back();
  };
  for (const ProfileFrameStat& f : from.frames) {
    delta_row(f.name).from_share = share(f.self, from.samples);
  }
  for (const ProfileFrameStat& f : to.frames) {
    delta_row(f.name).to_share = share(f.self, to.samples);
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const FrameDelta& a, const FrameDelta& b) {
              const double da = std::abs(a.to_share - a.from_share);
              const double db = std::abs(b.to_share - b.from_share);
              if (da != db) return da > db;
              return a.name < b.name;
            });
  if (deltas.size() > top_k) deltas.resize(top_k);
  if (!deltas.empty()) {
    out += StrFormat("\n== top %zu frame movements (self share) ==\n",
                     deltas.size());
    out += StrFormat("%-56s %8s %8s %8s\n", "frame", "from", "to", "delta");
    for (const FrameDelta& d : deltas) {
      out += StrFormat("%-56s %7.1f%% %7.1f%% %+7.1f%%\n", d.name.c_str(),
                       d.from_share, d.to_share, d.to_share - d.from_share);
    }
  }

  if (from.alloc_enabled && to.alloc_enabled) {
    const double from_bytes = static_cast<double>(from.alloc_total_bytes);
    const double to_bytes = static_cast<double>(to.alloc_total_bytes);
    std::string alloc_delta;
    if (from_bytes > 0.0) {
      alloc_delta =
          StrFormat(" (%+.1f%%)", 100.0 * (to_bytes - from_bytes) / from_bytes);
    }
    out += StrFormat("\nallocated: %s -> %s%s; peak %s -> %s\n",
                     HumanBytes(from_bytes).c_str(),
                     HumanBytes(to_bytes).c_str(), alloc_delta.c_str(),
                     HumanBytes(static_cast<double>(from.alloc_peak_bytes))
                         .c_str(),
                     HumanBytes(static_cast<double>(to.alloc_peak_bytes))
                         .c_str());
  }
  return out;
}

// ---- decision-provenance journal ----

StatusOr<double> JournalEvent::Number(const std::string& key) const {
  return JsonExtractNumber(line, key);
}

StatusOr<std::string> JournalEvent::String(const std::string& key) const {
  return JsonExtractString(line, key);
}

bool JournalEvent::Has(const std::string& key) const {
  return JsonHasKey(line, key);
}

StatusOr<std::vector<JournalEvent>> ParseJournal(const std::string& content) {
  std::vector<JournalEvent> events;
  std::istringstream in(content);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string line = CleanLine(raw);
    if (line.empty()) continue;
    if (line.front() != '{') {
      return Status::ParseError("unexpected journal line: " + line);
    }
    JournalEvent e;
    auto event = JsonExtractString(line, "event");
    if (!event.ok()) return event.status();
    e.event = event.value();
    auto seq = JsonExtractNumber(line, "seq");
    if (!seq.ok()) return seq.status();
    e.seq = static_cast<uint64_t>(seq.value());
    auto t = JsonExtractNumber(line, "t_us");
    if (!t.ok()) return t.status();
    e.t_us = t.value();
    e.line = line;
    events.push_back(std::move(e));
  }
  if (events.empty()) return Status::ParseError("empty journal");
  return events;
}

namespace {

/// The isum-events-v1 vocabulary: every event type the journal emits and
/// the fields it must carry (src/obs/journal.cc is the single producer).
struct EventSpec {
  const char* event;
  const char* fields[6];
};

constexpr EventSpec kEventSpecs[] = {
    {"journal_begin", {"schema", "label"}},
    {"journal_end", {}},
    {"compress_begin", {"n", "k", "algorithm", "threads"}},
    {"select", {"round", "query", "benefit", "gap", "shard", "eligible"}},
    {"feature_reset", {"selected"}},
    {"compress_end", {"selected", "selection_hash", "benefit_sum",
                      "stop_reason"}},
    {"enum_round", {"round", "candidates", "best_index", "improvement",
                    "cache_hits", "optimizer_calls"}},
    {"enum_end", {"indexes", "initial_cost", "final_cost", "stop_reason"}},
    {"retry", {"site", "attempt", "backoff_us"}},
    {"fault", {"site", "code"}},
    {"budget_tick", {"remaining_s"}},
    {"budget_stop", {"reason"}},
    {"ckpt_write", {"phase", "epoch", "rounds", "bytes"}},
    {"ckpt_restore", {"phase", "epoch", "restored", "prefix_hash", "done"}},
    {"attribution", {"query", "weight", "estimated", "realized"}},
    {"pipeline_end", {"algorithm", "k", "improvement_percent",
                      "stop_reason"}},
};

const EventSpec* FindEventSpec(const std::string& event) {
  for (const EventSpec& spec : kEventSpecs) {
    if (event == spec.event) return &spec;
  }
  return nullptr;
}

/// The obs::SelectionOrderHash FNV-1a constants, needed here in incremental
/// form: a resumed journal carries only the post-restore select events, so
/// the verifier seeds the hash state from the ckpt_restore record's
/// prefix_hash instead of replaying the whole order.
constexpr uint64_t kSelectionHashOffset = 1469598103934665603ull;
constexpr uint64_t kSelectionHashPrime = 1099511628211ull;

uint64_t ExtendSelectionHash(uint64_t h, const std::vector<size_t>& order) {
  for (const size_t id : order) {
    h ^= static_cast<uint64_t>(id);
    h *= kSelectionHashPrime;
  }
  return h;
}

/// Compares an (incrementally) recomputed selection hash against the
/// compress_end record's selection_hash.
Status VerifySelectionHash(uint64_t recomputed,
                           const JournalEvent& end_event) {
  auto recorded = end_event.String("selection_hash");
  if (!recorded.ok()) return recorded.status();
  const uint64_t stored =
      std::strtoull(recorded.value().c_str(), nullptr, 16);
  if (recomputed != stored) {
    return Status::ParseError(StrFormat(
        "selection hash mismatch at seq %llu: journal %s, recomputed %016llx",
        static_cast<unsigned long long>(end_event.seq),
        recorded.value().c_str(),
        static_cast<unsigned long long>(recomputed)));
  }
  return Status::OK();
}

}  // namespace

StatusOr<size_t> CheckJournal(const std::vector<JournalEvent>& events) {
  if (events.empty()) return Status::ParseError("empty journal");
  if (events.front().event != "journal_begin") {
    return Status::ParseError("journal does not start with journal_begin");
  }
  auto schema = events.front().String("schema");
  if (!schema.ok()) return schema.status();
  if (schema.value() != "isum-events-v1") {
    return Status::ParseError("unsupported journal schema: " + schema.value());
  }

  bool in_compress = false;
  uint64_t sel_hash = kSelectionHashOffset;
  uint64_t sel_count = 0;
  uint64_t expected_round = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const JournalEvent& e = events[i];
    if (e.seq != i) {
      return Status::ParseError(StrFormat(
          "non-dense seq: expected %zu, got %llu (truncated journal?)", i,
          static_cast<unsigned long long>(e.seq)));
    }
    const EventSpec* spec = FindEventSpec(e.event);
    if (spec == nullptr) {
      return Status::ParseError("unknown event type: " + e.event);
    }
    for (const char* field : spec->fields) {
      if (field == nullptr) break;
      if (!e.Has(field)) {
        return Status::ParseError(
            StrFormat("event %s (seq %llu) missing field \"%s\"",
                      e.event.c_str(),
                      static_cast<unsigned long long>(e.seq), field));
      }
    }
    if (e.event == "compress_begin") {
      if (in_compress) {
        return Status::ParseError("nested compress_begin at seq " +
                                  StrFormat("%llu", (unsigned long long)e.seq));
      }
      in_compress = true;
      sel_hash = kSelectionHashOffset;
      sel_count = 0;
      expected_round = 0;
    } else if (e.event == "ckpt_restore") {
      auto phase = e.String("phase");
      if (!phase.ok()) return phase.status();
      if (phase.value() == "compress") {
        // A resumed compression block: the journal carries only the
        // post-restore select events, so seed the incremental hash state
        // from the restored prefix.
        if (!in_compress) {
          return Status::ParseError(
              "compress ckpt_restore outside a compression block");
        }
        if (sel_count != 0) {
          return Status::ParseError(
              "ckpt_restore after select events in the same block");
        }
        auto restored = e.Number("restored");
        if (!restored.ok()) return restored.status();
        auto prefix = e.String("prefix_hash");
        if (!prefix.ok()) return prefix.status();
        sel_count = static_cast<uint64_t>(restored.value());
        expected_round = sel_count;
        sel_hash = std::strtoull(prefix.value().c_str(), nullptr, 16);
      }
    } else if (e.event == "select") {
      if (!in_compress) {
        return Status::ParseError("select outside a compression block");
      }
      auto round = e.Number("round");
      if (!round.ok()) return round.status();
      if (static_cast<uint64_t>(round.value()) != expected_round) {
        return Status::ParseError(StrFormat(
            "non-contiguous selection rounds: expected %llu, got %.0f",
            static_cast<unsigned long long>(expected_round), round.value()));
      }
      ++expected_round;
      auto query = e.Number("query");
      if (!query.ok()) return query.status();
      sel_hash ^= static_cast<uint64_t>(query.value());
      sel_hash *= kSelectionHashPrime;
      ++sel_count;
    } else if (e.event == "compress_end") {
      if (!in_compress) {
        return Status::ParseError("compress_end without compress_begin");
      }
      auto selected = e.Number("selected");
      if (!selected.ok()) return selected.status();
      if (static_cast<uint64_t>(selected.value()) != sel_count) {
        return Status::ParseError(StrFormat(
            "compress_end claims %.0f selections but block has %llu",
            selected.value(), static_cast<unsigned long long>(sel_count)));
      }
      const Status hash = VerifySelectionHash(sel_hash, e);
      if (!hash.ok()) return hash;
      in_compress = false;
    }
  }
  if (in_compress) {
    return Status::ParseError("unterminated compression block");
  }
  return events.size();
}

namespace {

/// Everything ExplainJournal accumulates for one compression block.
struct CompressBlock {
  std::string algorithm = "?";
  uint64_t n = 0;
  uint64_t k = 0;
  uint64_t threads = 1;
  std::vector<const JournalEvent*> selects;
  std::vector<size_t> order;
  std::vector<uint64_t> reset_rounds;  ///< selected-so-far at each reset
  const JournalEvent* end = nullptr;
  /// Checkpoint-resume seed: the restored prefix's hash state and length
  /// (kSelectionHashOffset/0 for a from-scratch block).
  uint64_t seed_hash = kSelectionHashOffset;
  uint64_t restored = 0;
  bool resumed = false;
};

std::string HumanGap(double gap) {
  return gap < 0.0 ? std::string("(none)") : StrFormat("%.6g", gap);
}

}  // namespace

StatusOr<std::string> ExplainJournal(const std::vector<JournalEvent>& events,
                                     size_t top_k) {
  if (events.empty()) return Status::ParseError("empty journal");

  std::string label = "?";
  if (events.front().event == "journal_begin") {
    auto l = events.front().String("label");
    if (l.ok()) label = l.value();
  }
  const bool closed = events.back().event == "journal_end";

  // One pass groups the stream: compression blocks, enumeration rounds,
  // attribution rows, fault/retry/budget timelines.
  std::vector<CompressBlock> blocks;
  CompressBlock* open_block = nullptr;
  std::vector<const JournalEvent*> enum_rounds;
  std::vector<const JournalEvent*> enum_ends;
  std::vector<const JournalEvent*> attributions;
  std::vector<const JournalEvent*> incidents;  ///< retry/fault/budget_stop
  std::vector<const JournalEvent*> ticks;
  std::vector<const JournalEvent*> ckpt_events;
  const JournalEvent* pipeline_end = nullptr;
  for (const JournalEvent& e : events) {
    if (e.event == "compress_begin") {
      blocks.emplace_back();
      open_block = &blocks.back();
      auto algorithm = e.String("algorithm");
      if (algorithm.ok()) open_block->algorithm = algorithm.value();
      auto n = e.Number("n");
      if (n.ok()) open_block->n = static_cast<uint64_t>(n.value());
      auto k = e.Number("k");
      if (k.ok()) open_block->k = static_cast<uint64_t>(k.value());
      auto threads = e.Number("threads");
      if (threads.ok()) {
        open_block->threads = static_cast<uint64_t>(threads.value());
      }
    } else if (e.event == "select") {
      if (open_block == nullptr) {
        return Status::ParseError("select outside a compression block");
      }
      auto query = e.Number("query");
      if (!query.ok()) return query.status();
      open_block->selects.push_back(&e);
      open_block->order.push_back(static_cast<size_t>(query.value()));
    } else if (e.event == "feature_reset") {
      if (open_block != nullptr) {
        auto selected = e.Number("selected");
        open_block->reset_rounds.push_back(
            selected.ok() ? static_cast<uint64_t>(selected.value()) : 0);
      }
    } else if (e.event == "compress_end") {
      if (open_block == nullptr) {
        return Status::ParseError("compress_end without compress_begin");
      }
      open_block->end = &e;
      open_block = nullptr;
    } else if (e.event == "enum_round") {
      enum_rounds.push_back(&e);
    } else if (e.event == "enum_end") {
      enum_ends.push_back(&e);
    } else if (e.event == "attribution") {
      attributions.push_back(&e);
    } else if (e.event == "retry" || e.event == "fault" ||
               e.event == "budget_stop") {
      incidents.push_back(&e);
    } else if (e.event == "budget_tick") {
      ticks.push_back(&e);
    } else if (e.event == "ckpt_write" || e.event == "ckpt_restore") {
      ckpt_events.push_back(&e);
      if (e.event == "ckpt_restore" && open_block != nullptr) {
        auto phase = e.String("phase");
        if (phase.ok() && phase.value() == "compress") {
          open_block->resumed = true;
          auto restored = e.Number("restored");
          if (restored.ok()) {
            open_block->restored = static_cast<uint64_t>(restored.value());
          }
          auto prefix = e.String("prefix_hash");
          if (prefix.ok()) {
            open_block->seed_hash =
                std::strtoull(prefix.value().c_str(), nullptr, 16);
          }
        }
      }
    } else if (e.event == "pipeline_end") {
      pipeline_end = &e;
    }
  }

  std::string out;
  out += StrFormat("== journal: %s (%zu events%s) ==\n", label.c_str(),
                   events.size(), closed ? "" : ", NOT cleanly closed");

  for (size_t b = 0; b < blocks.size(); ++b) {
    const CompressBlock& block = blocks[b];
    std::string stop_reason = "?";
    double benefit_sum = 0.0;
    std::string hash_note = "compress_end missing (truncated block)";
    if (block.end != nullptr) {
      auto reason = block.end->String("stop_reason");
      if (reason.ok()) stop_reason = reason.value();
      auto sum = block.end->Number("benefit_sum");
      if (sum.ok()) benefit_sum = sum.value();
      const Status hash = VerifySelectionHash(
          ExtendSelectionHash(block.seed_hash, block.order), *block.end);
      if (hash.ok()) {
        auto recorded = block.end->String("selection_hash");
        hash_note = StrFormat("%s (recomputed: match)",
                              recorded.ok() ? recorded.value().c_str() : "?");
      } else {
        hash_note = hash.ToString();
      }
    }
    out += StrFormat(
        "\n== compression %zu/%zu: %s, n=%llu -> k=%llu, %llu thread(s), "
        "%s ==\n",
        b + 1, blocks.size(), block.algorithm.c_str(),
        static_cast<unsigned long long>(block.n),
        static_cast<unsigned long long>(block.k),
        static_cast<unsigned long long>(block.threads), stop_reason.c_str());
    out += StrFormat("selected %zu, estimated benefit sum %.6g\n",
                     static_cast<size_t>(block.restored) + block.order.size(),
                     benefit_sum);
    if (block.resumed) {
      out += StrFormat(
          "resumed from checkpoint: %llu round(s) restored, %zu run live\n",
          static_cast<unsigned long long>(block.restored),
          block.order.size());
    }
    out += StrFormat("selection hash: %s\n", hash_note.c_str());
    if (!block.reset_rounds.empty()) {
      out += "feature resets after:";
      for (const uint64_t r : block.reset_rounds) {
        out += StrFormat(" %llu", static_cast<unsigned long long>(r));
      }
      out += " selected\n";
    }
    out += "selection order:";
    const size_t shown = std::min<size_t>(block.order.size(), 20);
    for (size_t i = 0; i < shown; ++i) {
      out += StrFormat(" %zu", block.order[i]);
    }
    if (shown < block.order.size()) {
      out += StrFormat(" ... (%zu more)", block.order.size() - shown);
    }
    out += "\n";

    // Contested rounds: smallest winning margin first — the decisions most
    // sensitive to featurization/weighting changes.
    std::vector<const JournalEvent*> contested = block.selects;
    auto gap_of = [](const JournalEvent* e) {
      auto gap = e->Number("gap");
      return gap.ok() ? gap.value() : -1.0;
    };
    std::stable_sort(contested.begin(), contested.end(),
                     [&](const JournalEvent* a, const JournalEvent* c) {
                       const double ga = gap_of(a);
                       const double gc = gap_of(c);
                       // Rounds without a runner-up (gap < 0) sort last.
                       if ((ga < 0.0) != (gc < 0.0)) return gc < 0.0;
                       return ga < gc;
                     });
    if (contested.size() > top_k) contested.resize(top_k);
    if (!contested.empty()) {
      out += StrFormat("top %zu contested rounds (smallest winning margin):\n",
                       contested.size());
      out += StrFormat("%8s %10s %12s %12s %7s %9s\n", "round", "query",
                       "benefit", "margin", "shard", "eligible");
      for (const JournalEvent* e : contested) {
        auto round = e->Number("round");
        auto query = e->Number("query");
        auto benefit = e->Number("benefit");
        auto shard = e->Number("shard");
        auto eligible = e->Number("eligible");
        out += StrFormat(
            "%8.0f %10.0f %12.6g %12s %7.0f %9.0f\n",
            round.ok() ? round.value() : -1.0,
            query.ok() ? query.value() : -1.0,
            benefit.ok() ? benefit.value() : 0.0,
            HumanGap(gap_of(e)).c_str(), shard.ok() ? shard.value() : 0.0,
            eligible.ok() ? eligible.value() : 0.0);
      }
    }
  }

  if (!enum_rounds.empty() || !enum_ends.empty()) {
    out += StrFormat("\n== enumeration: %zu round(s) ==\n",
                     enum_rounds.size());
    if (!enum_rounds.empty()) {
      out += StrFormat("%8s %11s %11s %12s %11s %10s\n", "round",
                       "candidates", "picked", "improvement", "cache_hits",
                       "opt_calls");
      for (const JournalEvent* e : enum_rounds) {
        auto round = e->Number("round");
        auto candidates = e->Number("candidates");
        auto best = e->Number("best_index");
        auto improvement = e->Number("improvement");
        auto hits = e->Number("cache_hits");
        auto calls = e->Number("optimizer_calls");
        out += StrFormat(
            "%8.0f %11.0f %11.0f %12.6g %11.0f %10.0f\n",
            round.ok() ? round.value() : -1.0,
            candidates.ok() ? candidates.value() : 0.0,
            best.ok() ? best.value() : -1.0,
            improvement.ok() ? improvement.value() : 0.0,
            hits.ok() ? hits.value() : 0.0, calls.ok() ? calls.value() : 0.0);
      }
    }
    for (const JournalEvent* e : enum_ends) {
      auto indexes = e->Number("indexes");
      auto initial = e->Number("initial_cost");
      auto final_cost = e->Number("final_cost");
      auto reason = e->String("stop_reason");
      const double c0 = initial.ok() ? initial.value() : 0.0;
      const double c1 = final_cost.ok() ? final_cost.value() : 0.0;
      out += StrFormat(
          "enumerated %0.f index(es): cost %.6g -> %.6g (%.1f%%), %s\n",
          indexes.ok() ? indexes.value() : 0.0, c0, c1,
          c0 > 0.0 ? 100.0 * (c0 - c1) / c0 : 0.0,
          reason.ok() ? reason.value().c_str() : "?");
    }
  }

  if (!attributions.empty()) {
    out += StrFormat(
        "\n== benefit attribution (%zu selected queries) ==\n",
        attributions.size());
    out += StrFormat("%10s %10s %12s %12s %10s\n", "query", "weight",
                     "estimated", "realized", "rank_err");
    // Rank error: |rank by estimated - rank by realized| per query — unit
    // free, so it works even though the estimate (similarity benefit) and
    // the realization (cost delta) have different scales.
    std::vector<size_t> by_est(attributions.size());
    std::vector<size_t> by_real(attributions.size());
    for (size_t i = 0; i < attributions.size(); ++i) by_est[i] = by_real[i] = i;
    auto num_of = [&](size_t i, const char* key) {
      auto v = attributions[i]->Number(key);
      return v.ok() ? v.value() : 0.0;
    };
    std::stable_sort(by_est.begin(), by_est.end(), [&](size_t a, size_t c) {
      return num_of(a, "estimated") > num_of(c, "estimated");
    });
    std::stable_sort(by_real.begin(), by_real.end(), [&](size_t a, size_t c) {
      return num_of(a, "realized") > num_of(c, "realized");
    });
    std::vector<size_t> est_rank(attributions.size());
    std::vector<size_t> real_rank(attributions.size());
    for (size_t r = 0; r < by_est.size(); ++r) est_rank[by_est[r]] = r;
    for (size_t r = 0; r < by_real.size(); ++r) real_rank[by_real[r]] = r;
    double total_rank_err = 0.0;
    for (size_t i = 0; i < attributions.size(); ++i) {
      const double rank_err =
          est_rank[i] >= real_rank[i]
              ? static_cast<double>(est_rank[i] - real_rank[i])
              : static_cast<double>(real_rank[i] - est_rank[i]);
      total_rank_err += rank_err;
      out += StrFormat("%10.0f %10.4g %12.6g %12.6g %10.0f\n",
                       num_of(i, "query"), num_of(i, "weight"),
                       num_of(i, "estimated"), num_of(i, "realized"),
                       rank_err);
    }
    out += StrFormat("mean rank error: %.2f over %zu queries\n",
                     total_rank_err / static_cast<double>(attributions.size()),
                     attributions.size());
  }

  if (!incidents.empty()) {
    out += StrFormat("\n== fault/retry timeline (%zu) ==\n", incidents.size());
    for (const JournalEvent* e : incidents) {
      if (e->event == "retry") {
        auto site = e->String("site");
        auto attempt = e->Number("attempt");
        auto backoff = e->Number("backoff_us");
        out += StrFormat("%14.3fus  retry %s attempt %.0f (backoff %s)\n",
                         e->t_us,
                         site.ok() ? site.value().c_str() : "?",
                         attempt.ok() ? attempt.value() : 0.0,
                         HumanUs(backoff.ok() ? backoff.value() : 0.0).c_str());
      } else if (e->event == "fault") {
        auto site = e->String("site");
        auto code = e->String("code");
        out += StrFormat("%14.3fus  FAULT %s surfaced %s\n", e->t_us,
                         site.ok() ? site.value().c_str() : "?",
                         code.ok() ? code.value().c_str() : "?");
      } else {
        auto reason = e->String("reason");
        out += StrFormat("%14.3fus  budget stop: %s\n", e->t_us,
                         reason.ok() ? reason.value().c_str() : "?");
      }
    }
  }

  if (!ckpt_events.empty()) {
    out += StrFormat("\n== checkpoints (%zu) ==\n", ckpt_events.size());
    for (const JournalEvent* e : ckpt_events) {
      auto phase = e->String("phase");
      auto epoch = e->Number("epoch");
      if (e->event == "ckpt_write") {
        auto rounds = e->Number("rounds");
        auto bytes = e->Number("bytes");
        out += StrFormat(
            "%14.3fus  wrote %s epoch %.0f (%.0f round(s), %.0f bytes)\n",
            e->t_us, phase.ok() ? phase.value().c_str() : "?",
            epoch.ok() ? epoch.value() : -1.0,
            rounds.ok() ? rounds.value() : 0.0,
            bytes.ok() ? bytes.value() : 0.0);
      } else {
        auto restored = e->Number("restored");
        auto done = e->Number("done");
        out += StrFormat(
            "%14.3fus  resumed %s from epoch %.0f (%.0f round(s)%s)\n",
            e->t_us, phase.ok() ? phase.value().c_str() : "?",
            epoch.ok() ? epoch.value() : -1.0,
            restored.ok() ? restored.value() : 0.0,
            done.ok() && done.value() != 0.0 ? ", already complete" : "");
      }
    }
  }

  if (!ticks.empty()) {
    auto first = ticks.front()->Number("remaining_s");
    auto last = ticks.back()->Number("remaining_s");
    out += StrFormat(
        "\n== budget ==\n%zu consumption tick(s): %.3fs -> %.3fs remaining\n",
        ticks.size(), first.ok() ? first.value() : 0.0,
        last.ok() ? last.value() : 0.0);
  }

  if (pipeline_end != nullptr) {
    auto algorithm = pipeline_end->String("algorithm");
    auto k = pipeline_end->Number("k");
    auto improvement = pipeline_end->Number("improvement_percent");
    auto reason = pipeline_end->String("stop_reason");
    out += StrFormat(
        "\n== pipeline: %s k=%.0f improvement %.2f%% (%s) ==\n",
        algorithm.ok() ? algorithm.value().c_str() : "?",
        k.ok() ? k.value() : 0.0,
        improvement.ok() ? improvement.value() : 0.0,
        reason.ok() ? reason.value().c_str() : "?");
  }
  return out;
}

// ---- live telemetry (Prometheus text) ----

StatusOr<std::vector<PromSample>> ParsePrometheusText(
    const std::string& content) {
  std::vector<PromSample> samples;
  std::istringstream in(content);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string line(Trim(raw));
    if (line.empty() || line.front() == '#') continue;
    // `name{labels} value` or `name value`.
    const size_t space = line.find_last_of(' ');
    if (space == std::string::npos || space == 0) {
      return Status::ParseError("malformed exposition line: " + line);
    }
    PromSample sample;
    std::string name = line.substr(0, space);
    const size_t brace = name.find('{');
    if (brace != std::string::npos) {
      if (name.back() != '}') {
        return Status::ParseError("unterminated label block: " + line);
      }
      sample.labels = name.substr(brace + 1, name.size() - brace - 2);
      name = name.substr(0, brace);
    }
    sample.name = std::move(name);
    char* end = nullptr;
    sample.value = std::strtod(line.c_str() + space + 1, &end);
    if (end == line.c_str() + space + 1) {
      return Status::ParseError("non-numeric sample value: " + line);
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

namespace {

const PromSample* FindSample(const std::vector<PromSample>& samples,
                             const std::string& name,
                             const std::string& labels = "") {
  for (const PromSample& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

double SampleOr(const std::vector<PromSample>& samples,
                const std::string& name, double fallback) {
  const PromSample* s = FindSample(samples, name);
  return s != nullptr ? s->value : fallback;
}

}  // namespace

std::string WatchFrame(const std::vector<PromSample>& samples) {
  std::string out;

  const double remaining =
      SampleOr(samples, "isum_budget_remaining_seconds", -1.0);
  out += StrFormat("budget remaining: %s\n",
                   remaining < 0.0 ? "unlimited"
                                   : StrFormat("%.1fs", remaining).c_str());

  out += StrFormat(
      "compression: %.0f run(s), %.0f -> %.0f queries\n",
      SampleOr(samples, "isum_compress_runs", 0.0),
      SampleOr(samples, "isum_compress_input_queries", 0.0),
      SampleOr(samples, "isum_compress_selected_queries", 0.0));
  out += StrFormat(
      "tuning: %.0f run(s), %.0f enumeration round(s), %.0f config(s) "
      "explored\n",
      SampleOr(samples, "isum_advisor_tuning_runs", 0.0),
      SampleOr(samples, "isum_advisor_enumeration_rounds", 0.0),
      SampleOr(samples, "isum_advisor_configurations_explored", 0.0));

  const double calls = SampleOr(samples, "isum_whatif_optimizer_calls", 0.0);
  const double hits = SampleOr(samples, "isum_whatif_cache_hits", 0.0);
  const double total = calls + hits;
  out += StrFormat("what-if: %.0f optimizer call(s), %.0f cache hit(s) "
                   "(%.1f%% hit rate)\n",
                   calls, hits, total > 0.0 ? 100.0 * hits / total : 0.0);
  const PromSample* p50 =
      FindSample(samples, "isum_whatif_optimize_nanos", "quantile=\"0.5\"");
  const PromSample* p99 =
      FindSample(samples, "isum_whatif_optimize_nanos", "quantile=\"0.99\"");
  if (p50 != nullptr && p99 != nullptr) {
    out += StrFormat("optimize latency: p50 %s  p99 %s\n",
                     HumanUs(p50->value / 1e3).c_str(),
                     HumanUs(p99->value / 1e3).c_str());
  }

  const double retries = SampleOr(samples, "isum_retry_attempts", 0.0);
  const double faults = SampleOr(samples, "isum_fault_injected", 0.0);
  const double deadline = SampleOr(samples, "isum_deadline_exceeded", 0.0);
  if (retries > 0.0 || faults > 0.0 || deadline > 0.0) {
    out += StrFormat(
        "robustness: %.0f retry(ies), %.0f fault(s) injected, %.0f deadline "
        "hit(s)\n",
        retries, faults, deadline);
  }

  // Per-site injected fault latency (the fault.latency.<site> histograms
  // src/common/fault.cc records for latency-kind rules).
  for (const PromSample& s : samples) {
    const std::string prefix = "isum_fault_latency_";
    if (s.name.compare(0, prefix.size(), prefix) != 0) continue;
    if (s.labels != "quantile=\"0.5\"") continue;
    const PromSample* p99 = FindSample(samples, s.name, "quantile=\"0.99\"");
    out += StrFormat("fault latency %s: p50 %s  p99 %s\n",
                     s.name.substr(prefix.size()).c_str(),
                     HumanUs(s.value / 1e3).c_str(),
                     HumanUs((p99 != nullptr ? p99->value : s.value) / 1e3)
                         .c_str());
  }

  const double ckpt_writes = SampleOr(samples, "isum_ckpt_writes", 0.0);
  const double ckpt_restores = SampleOr(samples, "isum_ckpt_restores", 0.0);
  if (ckpt_writes > 0.0 || ckpt_restores > 0.0) {
    out += StrFormat(
        "checkpoints: %.0f write(s) (%.0f failed, %.0f bytes), %.0f "
        "restore(s) (%.0f rejected)\n",
        ckpt_writes, SampleOr(samples, "isum_ckpt_write_failures", 0.0),
        SampleOr(samples, "isum_ckpt_bytes_written", 0.0), ckpt_restores,
        SampleOr(samples, "isum_ckpt_rejected", 0.0));
  }
  return out;
}

// ---- checkpoint files ----

namespace {

std::string StopReasonNote(uint64_t reason) {
  if (reason > static_cast<uint64_t>(StopReason::kFault)) {
    return StrFormat("invalid(%llu)", static_cast<unsigned long long>(reason));
  }
  return StopReasonToString(static_cast<StopReason>(reason));
}

}  // namespace

StatusOr<std::string> InspectCheckpoint(const std::string& path) {
  auto bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  auto reader = CheckpointReader::Parse(std::move(bytes).value());
  if (!reader.ok()) return reader.status();
  std::string out = StrFormat("%s: isum-ckpt-v1, %zu bytes\n", path.c_str(),
                              reader->total_bytes());
  for (const uint32_t id : reader->SectionIds()) {
    out += StrFormat("  section %u: %zu byte(s)\n", id,
                     reader->SectionSize(id));
  }
  // Both snapshot layouts keep their scalars in section 1; the enumeration
  // layout is distinguished by its 48-byte meta plus the what-if cache
  // section (4). Anything else prints as a raw container.
  if (reader->SectionSize(1) == 48 && reader->HasSection(4)) {
    auto meta = reader->Section(1);
    if (!meta.ok()) return meta.status();
    ISUM_ASSIGN_OR_RETURN(const uint64_t fingerprint, meta->ReadU64());
    ISUM_ASSIGN_OR_RETURN(const uint64_t done, meta->ReadU64());
    ISUM_ASSIGN_OR_RETURN(const uint64_t reason, meta->ReadU64());
    ISUM_ASSIGN_OR_RETURN(const uint64_t explored, meta->ReadU64());
    auto winners = reader->Section(2);
    if (!winners.ok()) return winners.status();
    ISUM_ASSIGN_OR_RETURN(const std::vector<uint64_t> winner_ids,
                          winners->ReadU64Vector());
    auto costs = reader->Section(3);
    if (!costs.ok()) return costs.status();
    ISUM_ASSIGN_OR_RETURN(const std::vector<double> cost_vec,
                          costs->ReadF64Vector());
    auto cache = reader->Section(4);
    if (!cache.ok()) return cache.status();
    ISUM_ASSIGN_OR_RETURN(const uint64_t cache_count, cache->ReadU64());
    out += StrFormat(
        "enumeration snapshot: fingerprint %016llx, %zu round(s), "
        "%zu quer(ies), %llu cached what-if answer(s), %llu config(s) "
        "explored, stop %s%s\n",
        static_cast<unsigned long long>(fingerprint), winner_ids.size(),
        cost_vec.size(), static_cast<unsigned long long>(cache_count),
        static_cast<unsigned long long>(explored),
        StopReasonNote(reason).c_str(), done != 0 ? ", done" : "");
  } else if (reader->SectionSize(1) == 32) {
    auto meta = reader->Section(1);
    if (!meta.ok()) return meta.status();
    ISUM_ASSIGN_OR_RETURN(const uint64_t fingerprint, meta->ReadU64());
    ISUM_ASSIGN_OR_RETURN(const uint64_t done, meta->ReadU64());
    ISUM_ASSIGN_OR_RETURN(const uint64_t reason, meta->ReadU64());
    ISUM_ASSIGN_OR_RETURN(const uint64_t rounds, meta->ReadU64());
    auto ids_cursor = reader->Section(2);
    if (!ids_cursor.ok()) return ids_cursor.status();
    ISUM_ASSIGN_OR_RETURN(const std::vector<uint64_t> ids,
                          ids_cursor->ReadU64Vector());
    if (ids.size() != rounds) {
      return Status::ParseError(StrFormat(
          "selection snapshot: meta claims %llu round(s), ids section has "
          "%zu",
          static_cast<unsigned long long>(rounds), ids.size()));
    }
    std::vector<size_t> order(ids.begin(), ids.end());
    out += StrFormat(
        "selection snapshot: fingerprint %016llx, %zu round(s), prefix hash "
        "%016llx, stop %s%s\n",
        static_cast<unsigned long long>(fingerprint), order.size(),
        static_cast<unsigned long long>(
            obs::SelectionOrderHash(order.data(), order.size())),
        StopReasonNote(reason).c_str(), done != 0 ? ", done" : "");
  }
  return out;
}

}  // namespace isum::tracecat
