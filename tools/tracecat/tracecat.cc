#include "tools/tracecat/tracecat.h"

#include <algorithm>
#include <sstream>

#include "common/jsonl.h"
#include "common/string_util.h"

namespace isum::tracecat {

namespace {

/// Strips whitespace and a trailing comma from one raw trace line.
std::string CleanLine(const std::string& raw) {
  std::string line(Trim(raw));
  if (!line.empty() && line.back() == ',') line.pop_back();
  return line;
}

/// args.name of a thread_name metadata event. The top-level "name" key is
/// "thread_name" itself, so the flat extractor cannot reach it; the args
/// object is the only nested value the exporter writes.
StatusOr<std::string> MetadataThreadName(const std::string& line) {
  const std::string needle = "\"args\":{\"name\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return Status::ParseError("metadata event without args.name: " + line);
  }
  return JsonExtractString(line.substr(pos + 8), "name");
}

}  // namespace

StatusOr<std::vector<TraceEvent>> ParseChromeTrace(
    const std::string& content) {
  std::vector<TraceEvent> events;
  std::istringstream in(content);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string line = CleanLine(raw);
    if (line.empty() || line == "[" || line == "]") continue;
    if (line.front() != '{') {
      return Status::ParseError("unexpected trace line: " + line);
    }
    TraceEvent event;
    auto phase = JsonExtractString(line, "ph");
    if (!phase.ok()) return phase.status();
    event.phase = phase.value();
    auto tid = JsonExtractNumber(line, "tid");
    if (!tid.ok()) return tid.status();
    event.tid = static_cast<uint32_t>(tid.value());
    if (event.phase == "M") {
      auto name = MetadataThreadName(line);
      if (!name.ok()) return name.status();
      event.thread_name = name.value();
      event.name = "thread_name";
    } else if (event.phase == "X") {
      auto name = JsonExtractString(line, "name");
      if (!name.ok()) return name.status();
      event.name = name.value();
      auto ts = JsonExtractNumber(line, "ts");
      if (!ts.ok()) return ts.status();
      event.ts_us = ts.value();
      auto dur = JsonExtractNumber(line, "dur");
      if (!dur.ok()) return dur.status();
      event.dur_us = dur.value();
    } else {
      return Status::ParseError("unsupported event phase: " + event.phase);
    }
    events.push_back(std::move(event));
  }
  return events;
}

std::vector<PhaseStat> AggregatePhases(const std::vector<TraceEvent>& events) {
  std::vector<PhaseStat> stats;
  for (const TraceEvent& e : events) {
    if (e.phase != "X") continue;
    PhaseStat* stat = nullptr;
    for (PhaseStat& s : stats) {
      if (s.name == e.name) {
        stat = &s;
        break;
      }
    }
    if (stat == nullptr) {
      stats.push_back(PhaseStat{e.name, 0, 0.0, 0.0});
      stat = &stats.back();
    }
    ++stat->count;
    stat->total_us += e.dur_us;
    stat->max_us = std::max(stat->max_us, e.dur_us);
  }
  std::sort(stats.begin(), stats.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;
            });
  return stats;
}

std::vector<TraceEvent> TopSlowest(const std::vector<TraceEvent>& events,
                                   size_t k) {
  std::vector<TraceEvent> spans;
  for (const TraceEvent& e : events) {
    if (e.phase == "X") spans.push_back(e);
  }
  std::sort(spans.begin(), spans.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.name < b.name;
            });
  if (spans.size() > k) spans.resize(k);
  return spans;
}

StatusOr<std::vector<MetricLine>> ParseMetricsJsonl(
    const std::string& content) {
  std::vector<MetricLine> metrics;
  std::istringstream in(content);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string line = CleanLine(raw);
    if (line.empty()) continue;
    MetricLine m;
    auto type = JsonExtractString(line, "type");
    if (!type.ok()) return type.status();
    m.type = type.value();
    auto name = JsonExtractString(line, "name");
    if (!name.ok()) return name.status();
    m.name = name.value();
    if (m.type == "histogram") {
      auto count = JsonExtractNumber(line, "count");
      if (!count.ok()) return count.status();
      m.count = static_cast<uint64_t>(count.value());
      auto sum = JsonExtractNumber(line, "sum");
      if (!sum.ok()) return sum.status();
      m.sum = static_cast<uint64_t>(sum.value());
      auto p50 = JsonExtractNumber(line, "p50");
      if (!p50.ok()) return p50.status();
      m.p50 = p50.value();
      auto p95 = JsonExtractNumber(line, "p95");
      if (!p95.ok()) return p95.status();
      m.p95 = p95.value();
      auto p99 = JsonExtractNumber(line, "p99");
      if (!p99.ok()) return p99.status();
      m.p99 = p99.value();
    } else {
      auto value = JsonExtractNumber(line, "value");
      if (!value.ok()) return value.status();
      m.value = value.value();
    }
    metrics.push_back(std::move(m));
  }
  return metrics;
}

namespace {

const MetricLine* FindMetric(const std::vector<MetricLine>& metrics,
                             const std::string& type,
                             const std::string& name) {
  for (const MetricLine& m : metrics) {
    if (m.type == type && m.name == name) return &m;
  }
  return nullptr;
}

std::string HumanUs(double us) {
  if (us >= 1e6) return StrFormat("%.2fs", us / 1e6);
  if (us >= 1e3) return StrFormat("%.2fms", us / 1e3);
  return StrFormat("%.1fus", us);
}

}  // namespace

std::string Report(const std::vector<TraceEvent>& events,
                   const std::vector<MetricLine>& metrics, size_t top_k) {
  std::string out;

  const std::vector<PhaseStat> phases = AggregatePhases(events);
  out += "== per-phase totals ==\n";
  if (phases.empty()) {
    out += "(no spans)\n";
  } else {
    out += StrFormat("%-32s %8s %12s %12s %12s\n", "phase", "count", "total",
                     "mean", "max");
    for (const PhaseStat& p : phases) {
      out += StrFormat(
          "%-32s %8llu %12s %12s %12s\n", p.name.c_str(),
          static_cast<unsigned long long>(p.count), HumanUs(p.total_us).c_str(),
          HumanUs(p.total_us / static_cast<double>(p.count)).c_str(),
          HumanUs(p.max_us).c_str());
    }
  }

  const std::vector<TraceEvent> slowest = TopSlowest(events, top_k);
  if (!slowest.empty()) {
    out += StrFormat("\n== top %zu slowest spans ==\n", slowest.size());
    out += StrFormat("%-32s %6s %14s %12s\n", "span", "tid", "start", "dur");
    for (const TraceEvent& e : slowest) {
      out += StrFormat("%-32s %6u %14s %12s\n", e.name.c_str(), e.tid,
                       HumanUs(e.ts_us).c_str(), HumanUs(e.dur_us).c_str());
    }
  }

  const MetricLine* calls =
      FindMetric(metrics, "counter", "whatif.optimizer_calls");
  const MetricLine* hits = FindMetric(metrics, "counter", "whatif.cache_hits");
  const MetricLine* lat =
      FindMetric(metrics, "histogram", "whatif.optimize_nanos");
  if (calls != nullptr || hits != nullptr) {
    const double n_calls = calls != nullptr ? calls->value : 0.0;
    const double n_hits = hits != nullptr ? hits->value : 0.0;
    const double total = n_calls + n_hits;
    out += "\n== what-if optimizer ==\n";
    out += StrFormat("optimizer calls: %.0f\n", n_calls);
    out += StrFormat("cache hits:      %.0f\n", n_hits);
    out += StrFormat("hit rate:        %.1f%%\n",
                     total > 0.0 ? 100.0 * n_hits / total : 0.0);
    if (lat != nullptr && lat->count > 0) {
      out += StrFormat("optimize latency: p50 %s  p95 %s  p99 %s\n",
                       HumanUs(lat->p50 / 1e3).c_str(),
                       HumanUs(lat->p95 / 1e3).c_str(),
                       HumanUs(lat->p99 / 1e3).c_str());
    }
  }

  // Robustness counters (docs/ROBUSTNESS.md): only reported when the run
  // recorded any, so fault-free traces stay unchanged.
  const MetricLine* injected = FindMetric(metrics, "counter", "fault.injected");
  const MetricLine* retries = FindMetric(metrics, "counter", "retry.attempts");
  const MetricLine* deadline =
      FindMetric(metrics, "counter", "deadline.exceeded");
  const double n_injected = injected != nullptr ? injected->value : 0.0;
  const double n_retries = retries != nullptr ? retries->value : 0.0;
  const double n_deadline = deadline != nullptr ? deadline->value : 0.0;
  if (n_injected > 0.0 || n_retries > 0.0 || n_deadline > 0.0) {
    out += "\n== robustness ==\n";
    out += StrFormat("faults injected:   %.0f\n", n_injected);
    out += StrFormat("retry attempts:    %.0f\n", n_retries);
    out += StrFormat("deadline exceeded: %.0f\n", n_deadline);
  }
  return out;
}

}  // namespace isum::tracecat
