#include "tools/tracecat/tracecat.h"

#include <algorithm>
#include <sstream>

#include "common/jsonl.h"
#include "common/string_util.h"

namespace isum::tracecat {

namespace {

/// Strips whitespace and a trailing comma from one raw trace line.
std::string CleanLine(const std::string& raw) {
  std::string line(Trim(raw));
  if (!line.empty() && line.back() == ',') line.pop_back();
  return line;
}

/// args.name of a thread_name metadata event. The top-level "name" key is
/// "thread_name" itself, so the flat extractor cannot reach it; the args
/// object is the only nested value the exporter writes.
StatusOr<std::string> MetadataThreadName(const std::string& line) {
  const std::string needle = "\"args\":{\"name\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return Status::ParseError("metadata event without args.name: " + line);
  }
  return JsonExtractString(line.substr(pos + 8), "name");
}

}  // namespace

StatusOr<std::vector<TraceEvent>> ParseChromeTrace(
    const std::string& content) {
  std::vector<TraceEvent> events;
  std::istringstream in(content);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string line = CleanLine(raw);
    if (line.empty() || line == "[" || line == "]") continue;
    if (line.front() != '{') {
      return Status::ParseError("unexpected trace line: " + line);
    }
    TraceEvent event;
    auto phase = JsonExtractString(line, "ph");
    if (!phase.ok()) return phase.status();
    event.phase = phase.value();
    auto tid = JsonExtractNumber(line, "tid");
    if (!tid.ok()) return tid.status();
    event.tid = static_cast<uint32_t>(tid.value());
    if (event.phase == "M") {
      auto name = MetadataThreadName(line);
      if (!name.ok()) return name.status();
      event.thread_name = name.value();
      event.name = "thread_name";
    } else if (event.phase == "X") {
      auto name = JsonExtractString(line, "name");
      if (!name.ok()) return name.status();
      event.name = name.value();
      auto ts = JsonExtractNumber(line, "ts");
      if (!ts.ok()) return ts.status();
      event.ts_us = ts.value();
      auto dur = JsonExtractNumber(line, "dur");
      if (!dur.ok()) return dur.status();
      event.dur_us = dur.value();
    } else {
      return Status::ParseError("unsupported event phase: " + event.phase);
    }
    events.push_back(std::move(event));
  }
  return events;
}

std::vector<PhaseStat> AggregatePhases(const std::vector<TraceEvent>& events) {
  std::vector<PhaseStat> stats;
  for (const TraceEvent& e : events) {
    if (e.phase != "X") continue;
    PhaseStat* stat = nullptr;
    for (PhaseStat& s : stats) {
      if (s.name == e.name) {
        stat = &s;
        break;
      }
    }
    if (stat == nullptr) {
      stats.push_back(PhaseStat{e.name, 0, 0.0, 0.0});
      stat = &stats.back();
    }
    ++stat->count;
    stat->total_us += e.dur_us;
    stat->max_us = std::max(stat->max_us, e.dur_us);
  }
  std::sort(stats.begin(), stats.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;
            });
  return stats;
}

std::vector<TraceEvent> TopSlowest(const std::vector<TraceEvent>& events,
                                   size_t k) {
  std::vector<TraceEvent> spans;
  for (const TraceEvent& e : events) {
    if (e.phase == "X") spans.push_back(e);
  }
  std::sort(spans.begin(), spans.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.name < b.name;
            });
  if (spans.size() > k) spans.resize(k);
  return spans;
}

StatusOr<std::vector<MetricLine>> ParseMetricsJsonl(
    const std::string& content) {
  std::vector<MetricLine> metrics;
  std::istringstream in(content);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string line = CleanLine(raw);
    if (line.empty()) continue;
    MetricLine m;
    auto type = JsonExtractString(line, "type");
    if (!type.ok()) return type.status();
    m.type = type.value();
    auto name = JsonExtractString(line, "name");
    if (!name.ok()) return name.status();
    m.name = name.value();
    if (m.type == "histogram") {
      auto count = JsonExtractNumber(line, "count");
      if (!count.ok()) return count.status();
      m.count = static_cast<uint64_t>(count.value());
      auto sum = JsonExtractNumber(line, "sum");
      if (!sum.ok()) return sum.status();
      m.sum = static_cast<uint64_t>(sum.value());
      auto p50 = JsonExtractNumber(line, "p50");
      if (!p50.ok()) return p50.status();
      m.p50 = p50.value();
      auto p95 = JsonExtractNumber(line, "p95");
      if (!p95.ok()) return p95.status();
      m.p95 = p95.value();
      auto p99 = JsonExtractNumber(line, "p99");
      if (!p99.ok()) return p99.status();
      m.p99 = p99.value();
    } else {
      auto value = JsonExtractNumber(line, "value");
      if (!value.ok()) return value.status();
      m.value = value.value();
    }
    metrics.push_back(std::move(m));
  }
  return metrics;
}

namespace {

const MetricLine* FindMetric(const std::vector<MetricLine>& metrics,
                             const std::string& type,
                             const std::string& name) {
  for (const MetricLine& m : metrics) {
    if (m.type == type && m.name == name) return &m;
  }
  return nullptr;
}

std::string HumanUs(double us) {
  if (us >= 1e6) return StrFormat("%.2fs", us / 1e6);
  if (us >= 1e3) return StrFormat("%.2fms", us / 1e3);
  return StrFormat("%.1fus", us);
}

}  // namespace

std::string Report(const std::vector<TraceEvent>& events,
                   const std::vector<MetricLine>& metrics, size_t top_k) {
  std::string out;

  const std::vector<PhaseStat> phases = AggregatePhases(events);
  out += "== per-phase totals ==\n";
  if (phases.empty()) {
    out += "(no spans)\n";
  } else {
    out += StrFormat("%-32s %8s %12s %12s %12s\n", "phase", "count", "total",
                     "mean", "max");
    for (const PhaseStat& p : phases) {
      out += StrFormat(
          "%-32s %8llu %12s %12s %12s\n", p.name.c_str(),
          static_cast<unsigned long long>(p.count), HumanUs(p.total_us).c_str(),
          HumanUs(p.total_us / static_cast<double>(p.count)).c_str(),
          HumanUs(p.max_us).c_str());
    }
  }

  const std::vector<TraceEvent> slowest = TopSlowest(events, top_k);
  if (!slowest.empty()) {
    out += StrFormat("\n== top %zu slowest spans ==\n", slowest.size());
    out += StrFormat("%-32s %6s %14s %12s\n", "span", "tid", "start", "dur");
    for (const TraceEvent& e : slowest) {
      out += StrFormat("%-32s %6u %14s %12s\n", e.name.c_str(), e.tid,
                       HumanUs(e.ts_us).c_str(), HumanUs(e.dur_us).c_str());
    }
  }

  const MetricLine* calls =
      FindMetric(metrics, "counter", "whatif.optimizer_calls");
  const MetricLine* hits = FindMetric(metrics, "counter", "whatif.cache_hits");
  const MetricLine* lat =
      FindMetric(metrics, "histogram", "whatif.optimize_nanos");
  if (calls != nullptr || hits != nullptr) {
    const double n_calls = calls != nullptr ? calls->value : 0.0;
    const double n_hits = hits != nullptr ? hits->value : 0.0;
    const double total = n_calls + n_hits;
    out += "\n== what-if optimizer ==\n";
    out += StrFormat("optimizer calls: %.0f\n", n_calls);
    out += StrFormat("cache hits:      %.0f\n", n_hits);
    out += StrFormat("hit rate:        %.1f%%\n",
                     total > 0.0 ? 100.0 * n_hits / total : 0.0);
    if (lat != nullptr && lat->count > 0) {
      out += StrFormat("optimize latency: p50 %s  p95 %s  p99 %s\n",
                       HumanUs(lat->p50 / 1e3).c_str(),
                       HumanUs(lat->p95 / 1e3).c_str(),
                       HumanUs(lat->p99 / 1e3).c_str());
    }
  }

  // Robustness counters (docs/ROBUSTNESS.md): only reported when the run
  // recorded any, so fault-free traces stay unchanged.
  const MetricLine* injected = FindMetric(metrics, "counter", "fault.injected");
  const MetricLine* retries = FindMetric(metrics, "counter", "retry.attempts");
  const MetricLine* deadline =
      FindMetric(metrics, "counter", "deadline.exceeded");
  const double n_injected = injected != nullptr ? injected->value : 0.0;
  const double n_retries = retries != nullptr ? retries->value : 0.0;
  const double n_deadline = deadline != nullptr ? deadline->value : 0.0;
  if (n_injected > 0.0 || n_retries > 0.0 || n_deadline > 0.0) {
    out += "\n== robustness ==\n";
    out += StrFormat("faults injected:   %.0f\n", n_injected);
    out += StrFormat("retry attempts:    %.0f\n", n_retries);
    out += StrFormat("deadline exceeded: %.0f\n", n_deadline);
  }
  return out;
}

namespace {

/// Does a cleaned bench line carry this scalar key? The emitter writes one
/// key per line, so a prefix check is unambiguous.
bool LineHasKey(const std::string& line, const char* key) {
  const std::string prefix = std::string("\"") + key + "\":";
  return line.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

StatusOr<std::vector<BenchRecord>> ParseBenchJson(const std::string& content) {
  // Line state machine matching bench_util.h's RenderBenchJson layout: a
  // record is `{`, one scalar per line, then the phases/counters/runs
  // sections, then `}`. A trajectory file wraps records in a JSON array.
  enum class Section { kTopLevel, kScalars, kPhases, kCounters, kRuns };
  Section section = Section::kTopLevel;

  std::vector<BenchRecord> records;
  BenchRecord record;
  bool saw_schema = false;
  bool saw_wall = false;
  bool saw_rss = false;

  std::istringstream in(content);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string line = CleanLine(raw);
    if (line.empty()) continue;
    switch (section) {
      case Section::kTopLevel:
        if (line == "[" || line == "]") break;  // trajectory array brackets
        if (line == "{") {
          record = BenchRecord();
          saw_schema = saw_wall = saw_rss = false;
          section = Section::kScalars;
          break;
        }
        return Status::ParseError("unexpected bench line: " + line);
      case Section::kScalars: {
        if (line == "}") {
          if (!saw_schema) {
            return Status::ParseError("bench record without schema tag");
          }
          if (!saw_wall || !saw_rss) {
            return Status::ParseError(
                "bench record missing wall_seconds/peak_rss_bytes");
          }
          records.push_back(std::move(record));
          section = Section::kTopLevel;
          break;
        }
        if (line == "\"phases\": [") {
          section = Section::kPhases;
          break;
        }
        if (line == "\"counters\": [") {
          section = Section::kCounters;
          break;
        }
        if (line == "\"runs\": [") {
          section = Section::kRuns;
          break;
        }
        if (LineHasKey(line, "schema")) {
          auto schema = JsonExtractString(line, "schema");
          if (!schema.ok()) return schema.status();
          if (schema.value() != "isum-bench-v1") {
            return Status::ParseError("unsupported bench schema: " +
                                      schema.value());
          }
          saw_schema = true;
        } else if (LineHasKey(line, "label")) {
          auto v = JsonExtractString(line, "label");
          if (!v.ok()) return v.status();
          record.label = v.value();
        } else if (LineHasKey(line, "bench")) {
          auto v = JsonExtractString(line, "bench");
          if (!v.ok()) return v.status();
          record.bench = v.value();
        } else if (LineHasKey(line, "git_rev")) {
          auto v = JsonExtractString(line, "git_rev");
          if (!v.ok()) return v.status();
          record.git_rev = v.value();
        } else if (LineHasKey(line, "wall_seconds")) {
          auto v = JsonExtractNumber(line, "wall_seconds");
          if (!v.ok()) return v.status();
          record.wall_seconds = v.value();
          saw_wall = true;
        } else if (LineHasKey(line, "peak_rss_bytes")) {
          auto v = JsonExtractNumber(line, "peak_rss_bytes");
          if (!v.ok()) return v.status();
          record.peak_rss_bytes = static_cast<uint64_t>(v.value());
          saw_rss = true;
        } else {
          return Status::ParseError("unknown bench scalar line: " + line);
        }
        break;
      }
      case Section::kPhases: {
        if (line == "]") {
          section = Section::kScalars;
          break;
        }
        PhaseStat phase;
        auto name = JsonExtractString(line, "name");
        if (!name.ok()) return name.status();
        phase.name = name.value();
        auto count = JsonExtractNumber(line, "count");
        if (!count.ok()) return count.status();
        phase.count = static_cast<uint64_t>(count.value());
        auto total = JsonExtractNumber(line, "total_us");
        if (!total.ok()) return total.status();
        phase.total_us = total.value();
        auto max = JsonExtractNumber(line, "max_us");
        if (!max.ok()) return max.status();
        phase.max_us = max.value();
        record.phases.push_back(std::move(phase));
        break;
      }
      case Section::kCounters: {
        if (line == "]") {
          section = Section::kScalars;
          break;
        }
        auto name = JsonExtractString(line, "name");
        if (!name.ok()) return name.status();
        auto value = JsonExtractNumber(line, "value");
        if (!value.ok()) return value.status();
        record.counters.emplace_back(name.value(), value.value());
        break;
      }
      case Section::kRuns: {
        if (line == "]") {
          section = Section::kScalars;
          break;
        }
        auto name = JsonExtractString(line, "name");
        if (!name.ok()) return name.status();
        record.run_names.push_back(name.value());
        break;
      }
    }
  }
  if (section != Section::kTopLevel) {
    return Status::ParseError("unterminated bench record");
  }
  if (records.empty()) {
    return Status::ParseError("no bench records found");
  }
  return records;
}

std::string BenchDelta(const BenchRecord& from, const BenchRecord& to) {
  std::string out;
  out += StrFormat("== bench delta: %s (%s) -> %s (%s) ==\n",
                   from.label.c_str(), from.git_rev.c_str(), to.label.c_str(),
                   to.git_rev.c_str());
  out += StrFormat("%-32s %12s %12s %10s\n", "phase", "from", "to", "delta");

  // Union of phase names, `from`'s order first so the dominant phases of the
  // baseline lead the table; phases new in `to` follow in `to`'s order.
  auto find = [](const std::vector<PhaseStat>& phases,
                 const std::string& name) -> const PhaseStat* {
    for (const PhaseStat& p : phases) {
      if (p.name == name) return &p;
    }
    return nullptr;
  };
  auto row = [&](const std::string& name, const PhaseStat* a,
                 const PhaseStat* b) {
    std::string delta = "-";
    if (a != nullptr && b != nullptr && a->total_us > 0.0) {
      delta = StrFormat("%+.1f%%",
                        100.0 * (b->total_us - a->total_us) / a->total_us);
    }
    out += StrFormat("%-32s %12s %12s %10s\n", name.c_str(),
                     a != nullptr ? HumanUs(a->total_us).c_str() : "-",
                     b != nullptr ? HumanUs(b->total_us).c_str() : "-",
                     delta.c_str());
  };
  for (const PhaseStat& p : from.phases) {
    row(p.name, &p, find(to.phases, p.name));
  }
  for (const PhaseStat& p : to.phases) {
    if (find(from.phases, p.name) == nullptr) row(p.name, nullptr, &p);
  }

  std::string wall_delta;
  if (from.wall_seconds > 0.0) {
    wall_delta = StrFormat(
        " (%+.1f%%)",
        100.0 * (to.wall_seconds - from.wall_seconds) / from.wall_seconds);
  }
  out += StrFormat("wall: %.2fs -> %.2fs%s\n", from.wall_seconds,
                   to.wall_seconds, wall_delta.c_str());
  return out;
}

}  // namespace isum::tracecat
