// tracecat — pretty-prints a bench driver's trace.json (and optional
// metrics snapshot): per-phase totals, top-k slowest spans, what-if
// hit-rate table. Usage:
//
//   tracecat <trace.json> [--metrics=<metrics.jsonl>] [--top=N]
//   tracecat bench <bench.json> [<bench2.json>] [--check]
//
// The bench subcommand parses isum-bench-v1 files (--bench-json= output).
// With two files (or one trajectory file holding several records) it prints
// the per-phase delta between the first and last record. --check only
// validates the schema, for CI smoke jobs.
//
// Exits non-zero on unreadable or malformed input.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "tools/tracecat/tracecat.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// `tracecat bench ...`: parse one or two isum-bench-v1 files; validate
/// (--check) or print the first-to-last per-phase delta.
int BenchMain(int argc, char** argv) {
  std::vector<std::string> paths;
  bool check_only = false;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0) {
      check_only = true;
    } else if (arg[0] != '-' && paths.size() < 2) {
      paths.emplace_back(arg);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: tracecat bench <bench.json> [<bench2.json>] "
                 "[--check]\n");
    return 2;
  }

  std::vector<isum::tracecat::BenchRecord> records;
  for (const std::string& path : paths) {
    std::string content;
    if (!ReadFile(path, &content)) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    auto parsed = isum::tracecat::ParseBenchJson(content);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    for (auto& record : parsed.value()) records.push_back(std::move(record));
  }

  if (check_only) {
    std::printf("ok: %zu bench record(s)\n", records.size());
    return 0;
  }
  if (records.size() < 2) {
    const auto& r = records.front();
    std::printf("%s (%s): wall %.2fs, %zu phase(s)\n", r.label.c_str(),
                r.git_rev.c_str(), r.wall_seconds, r.phases.size());
    return 0;
  }
  const std::string delta =
      isum::tracecat::BenchDelta(records.front(), records.back());
  std::fputs(delta.c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "bench") == 0) {
    return BenchMain(argc, argv);
  }
  std::string trace_path;
  std::string metrics_path;
  size_t top_k = 10;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--metrics=", 10) == 0) {
      metrics_path = arg + 10;
    } else if (std::strncmp(arg, "--top=", 6) == 0) {
      top_k = static_cast<size_t>(std::strtoul(arg + 6, nullptr, 10));
    } else if (trace_path.empty() && arg[0] != '-') {
      trace_path = arg;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }
  if (trace_path.empty()) {
    std::fprintf(stderr,
                 "usage: tracecat <trace.json> [--metrics=<path>] [--top=N]\n");
    return 2;
  }

  std::string trace_content;
  if (!ReadFile(trace_path, &trace_content)) {
    std::fprintf(stderr, "cannot read %s\n", trace_path.c_str());
    return 1;
  }
  const auto events = isum::tracecat::ParseChromeTrace(trace_content);
  if (!events.ok()) {
    std::fprintf(stderr, "%s: %s\n", trace_path.c_str(),
                 events.status().ToString().c_str());
    return 1;
  }

  std::vector<isum::tracecat::MetricLine> metrics;
  if (!metrics_path.empty()) {
    std::string metrics_content;
    if (!ReadFile(metrics_path, &metrics_content)) {
      std::fprintf(stderr, "cannot read %s\n", metrics_path.c_str());
      return 1;
    }
    auto parsed = isum::tracecat::ParseMetricsJsonl(metrics_content);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", metrics_path.c_str(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    metrics = std::move(parsed).value();
  }

  const std::string report =
      isum::tracecat::Report(events.value(), metrics, top_k);
  std::fputs(report.c_str(), stdout);
  return 0;
}
