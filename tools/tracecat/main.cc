// tracecat — pretty-prints the observability artifacts the bench drivers
// emit: traces, metric snapshots, bench baselines, decision journals, live
// telemetry. Usage:
//
//   tracecat <trace.json> [--metrics=<metrics.jsonl>] [--top=N]
//   tracecat bench <bench.json> [<bench2.json>] [--check]
//                  [--rss-tolerance=P]
//   tracecat explain <journal.jsonl> [--check] [--top=N]
//   tracecat profile <profile.json> [--check] [--top=N]
//                    [--min-attributed=P]
//   tracecat profile --diff <old.json> <new.json> [--top=N]
//   tracecat watch <snapshot.prom> [--interval=S] [--count=N]
//   tracecat watch --url=127.0.0.1:<port> [--interval=S] [--count=N]
//   tracecat ckpt inspect <file.ckpt...>
//   tracecat ckpt verify <file.ckpt...>
//
// The bench subcommand parses isum-bench-v1 files (--bench-json= output).
// With two files (or one trajectory file holding several records) it prints
// the per-phase delta between the first and last record. --check validates
// the schema and gates peak RSS growth between the first and last record
// (default tolerance +10%), for CI smoke jobs.
//
// The profile subcommand parses isum-profile-v1 files (--profile= output,
// src/obs/profiler.h): per-phase sample attribution, top frames by self
// samples, the allocation hot-list. --check validates the record and
// requires --min-attributed=P percent (default 0) of samples to land in a
// named phase. --diff compares two records by sample share.
//
// The explain subcommand reconstructs a run from its --journal= file
// (isum-events-v1): greedy selection trajectory with recomputed-vs-recorded
// selection hash, most contested rounds, enumeration rounds,
// estimated-vs-realized benefit attribution, fault/retry and budget
// timelines. --check validates the schema strictly (dense seq, known
// events, required fields, hash match) and prints only a verdict.
//
// The watch subcommand renders live run health from the metrics exporter
// (--serve-metrics= / --metrics-snapshot=): one frame per interval from
// either the Prometheus snapshot file or an HTTP GET against the
// 127.0.0.1 listener.
//
// The ckpt subcommand operates on isum-ckpt-v1 checkpoint files
// (--checkpoint= epochs, src/common/checkpoint.h). `inspect` prints the
// container layout and decoded snapshot metadata; `verify` runs the same
// validation silently and reports ok/error per file — it answers "would a
// resuming run accept this file?" without starting one.
//
// Exits non-zero on unreadable or malformed input.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define TRACECAT_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "tools/tracecat/tracecat.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// `tracecat bench ...`: parse one or two isum-bench-v1 files; validate
/// (--check) or print the first-to-last per-phase delta.
int BenchMain(int argc, char** argv) {
  std::vector<std::string> paths;
  bool check_only = false;
  double rss_tolerance_percent = 10.0;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0) {
      check_only = true;
    } else if (std::strncmp(arg, "--rss-tolerance=", 16) == 0) {
      rss_tolerance_percent = std::strtod(arg + 16, nullptr);
    } else if (arg[0] != '-' && paths.size() < 2) {
      paths.emplace_back(arg);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: tracecat bench <bench.json> [<bench2.json>] "
                 "[--check] [--rss-tolerance=P]\n");
    return 2;
  }

  std::vector<isum::tracecat::BenchRecord> records;
  for (const std::string& path : paths) {
    std::string content;
    if (!ReadFile(path, &content)) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    auto parsed = isum::tracecat::ParseBenchJson(content);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    for (auto& record : parsed.value()) records.push_back(std::move(record));
  }

  if (check_only) {
    const isum::Status rss =
        isum::tracecat::CheckBenchRss(records, rss_tolerance_percent);
    if (!rss.ok()) {
      std::fprintf(stderr, "%s\n", rss.ToString().c_str());
      return 1;
    }
    std::printf("ok: %zu bench record(s)\n", records.size());
    return 0;
  }
  if (records.size() < 2) {
    const auto& r = records.front();
    std::printf("%s (%s): wall %.2fs, %zu phase(s)\n", r.label.c_str(),
                r.git_rev.c_str(), r.wall_seconds, r.phases.size());
    return 0;
  }
  const std::string delta =
      isum::tracecat::BenchDelta(records.front(), records.back());
  std::fputs(delta.c_str(), stdout);
  return 0;
}

/// `tracecat explain ...`: reconstruct (or with --check, strictly validate)
/// a decision-provenance journal.
int ExplainMain(int argc, char** argv) {
  std::string path;
  bool check_only = false;
  size_t top_k = 5;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0) {
      check_only = true;
    } else if (std::strncmp(arg, "--top=", 6) == 0) {
      top_k = static_cast<size_t>(std::strtoul(arg + 6, nullptr, 10));
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(
        stderr, "usage: tracecat explain <journal.jsonl> [--check] [--top=N]\n");
    return 2;
  }

  std::string content;
  if (!ReadFile(path, &content)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  auto events = isum::tracecat::ParseJournal(content);
  if (!events.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 events.status().ToString().c_str());
    return 1;
  }
  if (check_only) {
    auto checked = isum::tracecat::CheckJournal(events.value());
    if (!checked.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   checked.status().ToString().c_str());
      return 1;
    }
    std::printf("ok: %zu journal event(s)\n", checked.value());
    return 0;
  }
  auto report = isum::tracecat::ExplainJournal(events.value(), top_k);
  if (!report.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 report.status().ToString().c_str());
    return 1;
  }
  std::fputs(report.value().c_str(), stdout);
  return 0;
}

/// `tracecat profile ...`: render (or with --check, validate) one
/// isum-profile-v1 record, or with --diff compare two by sample share.
int ProfileMain(int argc, char** argv) {
  std::vector<std::string> paths;
  bool check_only = false;
  bool diff = false;
  size_t top_k = 10;
  double min_attributed_percent = 0.0;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0) {
      check_only = true;
    } else if (std::strcmp(arg, "--diff") == 0) {
      diff = true;
    } else if (std::strncmp(arg, "--top=", 6) == 0) {
      top_k = static_cast<size_t>(std::strtoul(arg + 6, nullptr, 10));
    } else if (std::strncmp(arg, "--min-attributed=", 17) == 0) {
      min_attributed_percent = std::strtod(arg + 17, nullptr);
    } else if (arg[0] != '-' && paths.size() < 2) {
      paths.emplace_back(arg);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }
  const size_t want_paths = diff ? 2 : 1;
  if (paths.size() != want_paths || (diff && check_only)) {
    std::fprintf(stderr,
                 "usage: tracecat profile <profile.json> [--check] [--top=N] "
                 "[--min-attributed=P]\n"
                 "       tracecat profile --diff <old.json> <new.json> "
                 "[--top=N]\n");
    return 2;
  }

  std::vector<isum::tracecat::ProfileRecord> records;
  for (const std::string& path : paths) {
    std::string content;
    if (!ReadFile(path, &content)) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    auto parsed = isum::tracecat::ParseProfileJson(content);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    records.push_back(std::move(parsed).value());
  }

  if (diff) {
    const std::string delta =
        isum::tracecat::ProfileDiff(records.front(), records.back(), top_k);
    std::fputs(delta.c_str(), stdout);
    return 0;
  }
  if (check_only) {
    auto checked =
        isum::tracecat::CheckProfile(records.front(), min_attributed_percent);
    if (!checked.ok()) {
      std::fprintf(stderr, "%s: %s\n", paths.front().c_str(),
                   checked.status().ToString().c_str());
      return 1;
    }
    std::printf("ok: %zu profile sample(s), %.1f%% attributed\n",
                checked.value(), records.front().attributed_percent);
    return 0;
  }
  std::fputs(isum::tracecat::ProfileReport(records.front(), top_k).c_str(),
             stdout);
  return 0;
}

#ifdef TRACECAT_HAVE_SOCKETS
/// Minimal HTTP GET against the local metrics exporter. Accepts
/// "[http://]host:port[/path]" where host is a dotted quad or "localhost";
/// the path defaults to /metrics. Returns false on any connect/read/status
/// failure — watch reports it and (in polling mode) retries next interval.
bool HttpGetMetrics(const std::string& url_arg, std::string* out) {
  std::string rest = url_arg;
  const std::string scheme = "http://";
  if (rest.compare(0, scheme.size(), scheme) == 0) {
    rest = rest.substr(scheme.size());
  }
  std::string http_path = "/metrics";
  const size_t slash = rest.find('/');
  if (slash != std::string::npos) {
    http_path = rest.substr(slash);
    rest = rest.substr(0, slash);
  }
  const size_t colon = rest.find(':');
  if (colon == std::string::npos) return false;
  std::string host = rest.substr(0, colon);
  if (host == "localhost") host = "127.0.0.1";
  const int port = std::atoi(rest.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return false;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + http_path + " HTTP/1.1\r\nHost: " +
                              host + "\r\nConnection: close\r\n\r\n";
  size_t written = 0;
  while (written < request.size()) {
    const ssize_t w =
        ::write(fd, request.data() + written, request.size() - written);
    if (w <= 0) {
      ::close(fd);
      return false;
    }
    written += static_cast<size_t>(w);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  if (response.compare(0, 12, "HTTP/1.1 200") != 0) return false;
  *out = response.substr(header_end + 4);
  return true;
}
#endif  // TRACECAT_HAVE_SOCKETS

/// `tracecat watch ...`: render live run-health frames from the metrics
/// exporter, polling either its snapshot file or its HTTP listener.
int WatchMain(int argc, char** argv) {
  std::string path;
  std::string url;
  double interval_seconds = 1.0;
  int count = 1;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--url=", 6) == 0) {
      url = arg + 6;
    } else if (std::strncmp(arg, "--interval=", 11) == 0) {
      interval_seconds = std::strtod(arg + 11, nullptr);
    } else if (std::strncmp(arg, "--count=", 8) == 0) {
      count = std::atoi(arg + 8);
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }
  if (path.empty() == url.empty()) {  // exactly one source required
    std::fprintf(stderr,
                 "usage: tracecat watch <snapshot.prom | --url=host:port> "
                 "[--interval=S] [--count=N]\n");
    return 2;
  }
  if (count < 1) count = 1;
  if (interval_seconds < 0.05) interval_seconds = 0.05;

  int rendered = 0;
  for (int frame = 0; frame < count; ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(interval_seconds));
    }
    std::string content;
    bool fetched = false;
    if (!url.empty()) {
#ifdef TRACECAT_HAVE_SOCKETS
      fetched = HttpGetMetrics(url, &content);
#else
      std::fprintf(stderr, "--url= is unsupported on this platform\n");
      return 2;
#endif
    } else {
      fetched = ReadFile(path, &content);
    }
    const std::string source = url.empty() ? path : url;
    if (!fetched) {
      // Polling a run that has not started (or already finished) is
      // normal; report and keep polling unless this is the only frame.
      std::fprintf(stderr, "frame %d/%d: cannot fetch %s\n", frame + 1, count,
                   source.c_str());
      if (count == 1) return 1;
      continue;
    }
    auto samples = isum::tracecat::ParsePrometheusText(content);
    if (!samples.ok()) {
      std::fprintf(stderr, "%s: %s\n", source.c_str(),
                   samples.status().ToString().c_str());
      return 1;
    }
    if (count > 1) std::printf("--- frame %d/%d ---\n", frame + 1, count);
    std::fputs(isum::tracecat::WatchFrame(samples.value()).c_str(), stdout);
    std::fflush(stdout);
    ++rendered;
  }
  return rendered > 0 ? 0 : 1;
}

/// `tracecat ckpt inspect|verify ...`: decode (or just validate)
/// isum-ckpt-v1 checkpoint files.
int CkptMain(int argc, char** argv) {
  std::string mode;
  std::vector<std::string> paths;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (mode.empty() &&
        (std::strcmp(arg, "inspect") == 0 || std::strcmp(arg, "verify") == 0)) {
      mode = arg;
    } else if (arg[0] != '-') {
      paths.emplace_back(arg);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }
  if (mode.empty() || paths.empty()) {
    std::fprintf(stderr,
                 "usage: tracecat ckpt inspect <file.ckpt...>\n"
                 "       tracecat ckpt verify <file.ckpt...>\n");
    return 2;
  }
  int bad = 0;
  for (const std::string& path : paths) {
    auto report = isum::tracecat::InspectCheckpoint(path);
    if (!report.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                   report.status().ToString().c_str());
      ++bad;
      continue;
    }
    if (mode == "verify") {
      std::printf("ok: %s\n", path.c_str());
    } else {
      std::fputs(report.value().c_str(), stdout);
    }
  }
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "bench") == 0) {
    return BenchMain(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "explain") == 0) {
    return ExplainMain(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "profile") == 0) {
    return ProfileMain(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "watch") == 0) {
    return WatchMain(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "ckpt") == 0) {
    return CkptMain(argc, argv);
  }
  std::string trace_path;
  std::string metrics_path;
  size_t top_k = 10;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--metrics=", 10) == 0) {
      metrics_path = arg + 10;
    } else if (std::strncmp(arg, "--top=", 6) == 0) {
      top_k = static_cast<size_t>(std::strtoul(arg + 6, nullptr, 10));
    } else if (trace_path.empty() && arg[0] != '-') {
      trace_path = arg;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }
  if (trace_path.empty()) {
    std::fprintf(stderr,
                 "usage: tracecat <trace.json> [--metrics=<path>] [--top=N]\n");
    return 2;
  }

  std::string trace_content;
  if (!ReadFile(trace_path, &trace_content)) {
    std::fprintf(stderr, "cannot read %s\n", trace_path.c_str());
    return 1;
  }
  const auto events = isum::tracecat::ParseChromeTrace(trace_content);
  if (!events.ok()) {
    std::fprintf(stderr, "%s: %s\n", trace_path.c_str(),
                 events.status().ToString().c_str());
    return 1;
  }

  std::vector<isum::tracecat::MetricLine> metrics;
  if (!metrics_path.empty()) {
    std::string metrics_content;
    if (!ReadFile(metrics_path, &metrics_content)) {
      std::fprintf(stderr, "cannot read %s\n", metrics_path.c_str());
      return 1;
    }
    auto parsed = isum::tracecat::ParseMetricsJsonl(metrics_content);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", metrics_path.c_str(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    metrics = std::move(parsed).value();
  }

  const std::string report =
      isum::tracecat::Report(events.value(), metrics, top_k);
  std::fputs(report.c_str(), stdout);
  return 0;
}
