#ifndef ISUM_TOOLS_TRACECAT_TRACECAT_H_
#define ISUM_TOOLS_TRACECAT_TRACECAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace isum::tracecat {

/// tracecat: pretty-printer for the traces and metric snapshots the bench
/// drivers emit (--trace= / --metrics=, src/obs/export.h). The parser
/// handles exactly the line-per-event shape those exporters write — it is a
/// diagnosis tool for this repo's files, not a general JSON reader.

/// One parsed Chrome-trace event (complete spans and thread_name metadata).
struct TraceEvent {
  std::string phase;        ///< "X" (span) or "M" (metadata)
  std::string name;         ///< span name, e.g. "whatif/optimize"
  std::string thread_name;  ///< metadata events: args.name
  uint32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

/// Parses a Chrome trace written by obs::ChromeTraceJson.
StatusOr<std::vector<TraceEvent>> ParseChromeTrace(const std::string& content);

/// Aggregate over all spans sharing a name.
struct PhaseStat {
  std::string name;
  uint64_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;
};

/// Per-phase totals over the span events, sorted by descending total time
/// (ties by name, so output is deterministic).
std::vector<PhaseStat> AggregatePhases(const std::vector<TraceEvent>& events);

/// The `k` slowest spans, by descending duration (ties by start, name).
std::vector<TraceEvent> TopSlowest(const std::vector<TraceEvent>& events,
                                   size_t k);

/// One line of a metrics JSONL snapshot (obs::MetricsJsonl).
struct MetricLine {
  std::string type;  ///< "counter", "gauge", or "histogram"
  std::string name;
  double value = 0.0;  ///< counters/gauges
  uint64_t count = 0;  ///< histograms
  uint64_t sum = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

StatusOr<std::vector<MetricLine>> ParseMetricsJsonl(
    const std::string& content);

/// Renders the report: per-phase table, top-k slowest spans, and (when
/// metrics are present) the what-if call/hit-rate table.
std::string Report(const std::vector<TraceEvent>& events,
                   const std::vector<MetricLine>& metrics, size_t top_k);

/// One parsed --bench-json= record (the isum-bench-v1 layout written by
/// bench/bench_util.h; schema documented in docs/BENCHMARKING.md).
struct BenchRecord {
  std::string label;
  std::string bench;
  std::string git_rev;
  double wall_seconds = 0.0;
  uint64_t peak_rss_bytes = 0;
  std::vector<PhaseStat> phases;  ///< per-phase totals, descending total_us
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::string> run_names;
};

/// Parses isum-bench-v1 content: either a single record as the emitter
/// writes it, or a trajectory file (a JSON array concatenating such records,
/// e.g. BENCH_scalability.json). Errors on anything schema-invalid: wrong or
/// missing schema tag, missing required scalars, unterminated records.
StatusOr<std::vector<BenchRecord>> ParseBenchJson(const std::string& content);

/// One line per phase (union of both records, `from`'s order first):
/// total time in `from` vs `to` with the relative change, then a wall-clock
/// summary line. This is the per-phase diff between two recorded baselines.
std::string BenchDelta(const BenchRecord& from, const BenchRecord& to);

}  // namespace isum::tracecat

#endif  // ISUM_TOOLS_TRACECAT_TRACECAT_H_
