#ifndef ISUM_TOOLS_TRACECAT_TRACECAT_H_
#define ISUM_TOOLS_TRACECAT_TRACECAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace isum::tracecat {

/// tracecat: pretty-printer for the traces and metric snapshots the bench
/// drivers emit (--trace= / --metrics=, src/obs/export.h). The parser
/// handles exactly the line-per-event shape those exporters write — it is a
/// diagnosis tool for this repo's files, not a general JSON reader.

/// One parsed Chrome-trace event (complete spans and thread_name metadata).
struct TraceEvent {
  std::string phase;        ///< "X" (span) or "M" (metadata)
  std::string name;         ///< span name, e.g. "whatif/optimize"
  std::string thread_name;  ///< metadata events: args.name
  uint32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

/// Parses a Chrome trace written by obs::ChromeTraceJson.
StatusOr<std::vector<TraceEvent>> ParseChromeTrace(const std::string& content);

/// Aggregate over all spans sharing a name.
struct PhaseStat {
  std::string name;
  uint64_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;
};

/// Per-phase totals over the span events, sorted by descending total time
/// (ties by name, so output is deterministic).
std::vector<PhaseStat> AggregatePhases(const std::vector<TraceEvent>& events);

/// The `k` slowest spans, by descending duration (ties by start, name).
std::vector<TraceEvent> TopSlowest(const std::vector<TraceEvent>& events,
                                   size_t k);

/// One line of a metrics JSONL snapshot (obs::MetricsJsonl).
struct MetricLine {
  std::string type;  ///< "counter", "gauge", or "histogram"
  std::string name;
  double value = 0.0;  ///< counters/gauges
  uint64_t count = 0;  ///< histograms
  uint64_t sum = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

StatusOr<std::vector<MetricLine>> ParseMetricsJsonl(
    const std::string& content);

/// Renders the report: per-phase table, top-k slowest spans, and (when
/// metrics are present) the what-if call/hit-rate table.
std::string Report(const std::vector<TraceEvent>& events,
                   const std::vector<MetricLine>& metrics, size_t top_k);

/// One parsed --bench-json= record (the isum-bench-v1 layout written by
/// bench/bench_util.h; schema documented in docs/BENCHMARKING.md).
struct BenchRecord {
  std::string label;
  std::string bench;
  std::string git_rev;
  double wall_seconds = 0.0;
  uint64_t peak_rss_bytes = 0;
  std::vector<PhaseStat> phases;  ///< per-phase totals, descending total_us
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::string> run_names;
};

/// Parses isum-bench-v1 content: either a single record as the emitter
/// writes it, or a trajectory file (a JSON array concatenating such records,
/// e.g. BENCH_scalability.json). Errors on anything schema-invalid: wrong or
/// missing schema tag, missing required scalars, unterminated records.
StatusOr<std::vector<BenchRecord>> ParseBenchJson(const std::string& content);

/// One line per phase (union of both records, `from`'s order first):
/// total time in `from` vs `to` with the relative change, then a wall-clock
/// summary line. This is the per-phase diff between two recorded baselines.
std::string BenchDelta(const BenchRecord& from, const BenchRecord& to);

/// Memory-regression gate for `tracecat bench --check`: compares the first
/// and last record's peak_rss_bytes and errors when the growth exceeds
/// `tolerance_percent` (both directions are reported, only growth fails —
/// a slimmer binary is not a regression). No-op with fewer than two
/// records or a zero first-record RSS (unsupported platform).
Status CheckBenchRss(const std::vector<BenchRecord>& records,
                     double tolerance_percent);

/// ---- sampling profiles (isum-profile-v1, src/obs/profiler.h) ----

/// Per-phase sample totals of one profile record.
struct ProfilePhaseStat {
  std::string name;  ///< "(unattributed)" for samples outside any span
  uint64_t samples = 0;
  double percent = 0.0;
};

/// One symbolized frame's self/total sample counts.
struct ProfileFrameStat {
  std::string name;
  uint64_t self = 0;   ///< samples with this frame as the leaf
  uint64_t total = 0;  ///< samples with this frame anywhere on the stack
};

/// Per-phase allocation totals (present when the record was taken with
/// --profile-alloc=1 on an ISUM_OBS_PROFILING build).
struct ProfileAllocStat {
  std::string name;
  uint64_t bytes = 0;
  uint64_t count = 0;
};

/// One parsed --profile= record (the isum-profile-v1 layout written by
/// obs::ProfileJson; schema documented in docs/OBSERVABILITY.md).
struct ProfileRecord {
  std::string label;
  std::string bench;
  std::string git_rev;
  int sample_hz = 0;
  double wall_seconds = 0.0;
  uint64_t samples = 0;
  uint64_t dropped = 0;
  uint64_t attributed_samples = 0;
  double attributed_percent = 0.0;
  bool alloc_enabled = false;
  uint64_t alloc_total_bytes = 0;
  uint64_t alloc_total_count = 0;
  int64_t alloc_live_bytes = 0;  ///< signed: frees of pre-arm allocations
  uint64_t alloc_peak_bytes = 0;
  std::vector<ProfilePhaseStat> phases;      ///< descending samples
  std::vector<ProfileFrameStat> frames;      ///< descending self
  std::vector<ProfileAllocStat> alloc_phases;
};

/// Parses one isum-profile-v1 record. Errors on anything schema-invalid:
/// wrong or missing schema tag, missing required scalars, unknown scalar
/// lines, unterminated records.
StatusOr<ProfileRecord> ParseProfileJson(const std::string& content);

/// Renders the profile report: header (samples, rate, attribution), the
/// per-phase attribution table, top-k frames by self samples, and — when
/// the record carries allocation data — the allocation hot-list.
std::string ProfileReport(const ProfileRecord& record, size_t top_k);

/// Validation for `tracecat profile --check`: sane scalars (positive hz,
/// percent arithmetic consistent with the sample counts) and at least
/// `min_attributed_percent` of samples attributed to a named phase.
/// Returns the number of samples validated.
StatusOr<size_t> CheckProfile(const ProfileRecord& record,
                              double min_attributed_percent);

/// Per-phase and per-frame sample-share diff between two profile records
/// (shares, not raw counts, so records of different lengths compare).
std::string ProfileDiff(const ProfileRecord& from, const ProfileRecord& to,
                        size_t top_k);

/// ---- decision-provenance journal (isum-events-v1, src/obs/journal.h) ----

/// One parsed journal line. The envelope fields every event carries are
/// lifted out; event-specific fields stay in `line` and are extracted on
/// demand via Number()/String() (the journal writes flat one-line objects,
/// so the JSONL helpers reach every field).
struct JournalEvent {
  std::string event;  ///< e.g. "select", "compress_end"
  uint64_t seq = 0;
  double t_us = 0.0;
  std::string line;  ///< the cleaned full line

  StatusOr<double> Number(const std::string& key) const;
  StatusOr<std::string> String(const std::string& key) const;
  bool Has(const std::string& key) const;
};

/// Parses an isum-events-v1 journal. Errors on lines without the
/// event/seq/t_us envelope; event-specific validation is CheckJournal's job.
StatusOr<std::vector<JournalEvent>> ParseJournal(const std::string& content);

/// Schema validation for `tracecat explain --check`: journal_begin first
/// (with the right schema tag), known event types only, required per-event
/// fields present, dense seq numbering, and every compress_end's
/// selection_hash equal to the hash recomputed from its block's select
/// events. Returns the number of events validated.
StatusOr<size_t> CheckJournal(const std::vector<JournalEvent>& events);

/// Reconstructs the run: per compression block the greedy trajectory
/// (selection order, recomputed-vs-recorded hash, top-k contested rounds by
/// smallest winning margin, feature resets), enumeration rounds, the
/// estimated-vs-realized benefit attribution table, the fault/retry
/// timeline, and the budget timeline. Errors only on events so malformed
/// the reconstruction cannot proceed (run CheckJournal for strictness).
StatusOr<std::string> ExplainJournal(const std::vector<JournalEvent>& events,
                                     size_t top_k);

/// ---- live telemetry (Prometheus text, src/obs/exporter.h) ----

/// One sample of a Prometheus text exposition: `name{labels} value`.
struct PromSample {
  std::string name;    ///< metric name without labels, e.g. "isum_whatif_cache_hits"
  std::string labels;  ///< raw label block without braces ("" when absent)
  double value = 0.0;
};

/// Parses the Prometheus/OpenMetrics text obs::PrometheusText writes
/// (`# TYPE` comments are skipped; any other `#` comment too).
StatusOr<std::vector<PromSample>> ParsePrometheusText(
    const std::string& content);

/// Renders one `tracecat watch` frame from a snapshot: compression/tuning
/// progress counters, what-if hit rate, retry/fault health (including the
/// per-site fault.latency.* histograms), checkpoint activity, and the
/// exporter's budget.remaining_seconds gauge.
std::string WatchFrame(const std::vector<PromSample>& samples);

/// ---- checkpoint files (isum-ckpt-v1, src/common/checkpoint.h) ----

/// Human summary of one checkpoint file for `tracecat ckpt inspect`:
/// container header, per-section sizes, and the decoded snapshot metadata
/// when the sections match the compression (.compress) or enumeration
/// (.enum) layout. Errors on unreadable or structurally invalid files —
/// the same validation a resuming run applies, so `tracecat ckpt verify`
/// (inspect minus the printing) answers "would this file restore?".
StatusOr<std::string> InspectCheckpoint(const std::string& path);

}  // namespace isum::tracecat

#endif  // ISUM_TOOLS_TRACECAT_TRACECAT_H_
