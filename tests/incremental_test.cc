// Tests for the incremental (anytime) compressor extension.

#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "baselines/simple.h"
#include "core/incremental.h"
#include "eval/pipeline.h"
#include "workload/workload_factory.h"

namespace isum::core {
namespace {

class IncrementalTest : public ::testing::Test {
 protected:
  IncrementalTest() {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 4;
    env_ = workload::MakeTpch(gen);
  }
  const workload::Workload& W() { return *env_->workload; }

  std::optional<workload::GeneratedWorkload> env_;
};

TEST_F(IncrementalTest, SelectionAvailableAfterEveryBatch) {
  IncrementalIsum inc(&W(), 8);
  const size_t batch = 16;
  for (size_t begin = 0; begin < W().size(); begin += batch) {
    inc.ObserveBatch(begin, std::min(W().size(), begin + batch));
    const workload::CompressedWorkload current = inc.Current();
    EXPECT_LE(current.size(), 8u);
    EXPECT_GT(current.size(), 0u);
    // Selected indices must come from the observed prefix.
    for (const auto& e : current.entries) {
      EXPECT_LT(e.query_index, inc.observed());
    }
  }
  EXPECT_EQ(inc.observed(), W().size());
  EXPECT_EQ(inc.Current().size(), 8u);
}

TEST_F(IncrementalTest, WeightsNormalized) {
  IncrementalIsum inc(&W(), 6);
  inc.ObserveBatch(0, W().size());
  double total = 0.0;
  for (const auto& e : inc.Current().entries) {
    EXPECT_GE(e.weight, 0.0);
    total += e.weight;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(IncrementalTest, SelectionsAreDistinct) {
  IncrementalIsum inc(&W(), 10);
  for (size_t begin = 0; begin < W().size(); begin += 10) {
    inc.ObserveBatch(begin, std::min(W().size(), begin + 10));
  }
  const auto current = inc.Current();
  std::set<size_t> uniq;
  for (const auto& e : current.entries) uniq.insert(e.query_index);
  EXPECT_EQ(uniq.size(), current.size());
}

TEST_F(IncrementalTest, SingleBatchMatchesBatchIsumQuality) {
  // Observing everything at once approximates batch ISUM: the tuned
  // improvement should be in the same ballpark.
  IncrementalIsum inc(&W(), 8);
  inc.ObserveBatch(0, W().size());
  advisor::TuningOptions tuning;
  tuning.max_indexes = 12;
  const eval::TunerFn tuner = eval::MakeDtaTuner(W(), tuning);
  const double inc_improvement =
      eval::RunPipeline(W(), inc.Current(), tuner, "inc").improvement_percent;
  const double batch_improvement =
      eval::RunPipeline(W(), Isum(&W()).Compress(8), tuner, "batch")
          .improvement_percent;
  EXPECT_GT(inc_improvement, 0.5 * batch_improvement);
}

TEST_F(IncrementalTest, StreamingBeatsUniformPrefixSampling) {
  // Against a uniform sample of the same size, the incremental selection
  // should tune substantially better.
  IncrementalIsum inc(&W(), 8);
  for (size_t begin = 0; begin < W().size(); begin += 8) {
    inc.ObserveBatch(begin, std::min(W().size(), begin + 8));
  }
  advisor::TuningOptions tuning;
  tuning.max_indexes = 12;
  const eval::TunerFn tuner = eval::MakeDtaTuner(W(), tuning);
  const double inc_improvement =
      eval::RunPipeline(W(), inc.Current(), tuner, "inc").improvement_percent;

  baselines::UniformSamplingCompressor uniform(3);
  const double uniform_improvement =
      eval::RunPipeline(W(), uniform.Compress(W(), 8), tuner, "uniform")
          .improvement_percent;
  EXPECT_GT(inc_improvement, uniform_improvement);
}

TEST_F(IncrementalTest, EmptyBatchIsHarmless) {
  IncrementalIsum inc(&W(), 4);
  inc.ObserveBatch(0, 10);
  const auto before = inc.Current();
  inc.ObserveBatch(10, 10);  // empty range
  const auto after = inc.Current();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.entries.size(); ++i) {
    EXPECT_EQ(before.entries[i].query_index, after.entries[i].query_index);
  }
}

TEST_F(IncrementalTest, KLargerThanStreamSelectsAll) {
  IncrementalIsum inc(&W(), 500);
  inc.ObserveBatch(0, 12);
  EXPECT_EQ(inc.Current().size(), 12u);
}

}  // namespace
}  // namespace isum::core
