// Tests for src/obs/profiler: the sampling CPU profiler's session
// lifecycle, phase attribution through the tracer's span stack, and the
// collapsed-stack / isum-profile-v1 exporters (driven from synthetic
// ProfileDumps, so golden assertions don't depend on real sampling).
// Allocation-accounting tests are compiled only under ISUM_OBS_PROFILING.
// Suite names start with `Profiler` so the TSan CI job picks the
// signal-heavy tests up via its --gtest_filter.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace isum::obs {
namespace {

/// Consumes CPU until the profiler has captured at least `min_samples` (or
/// the iteration cap is hit — the caller asserts on the count, so a stuck
/// timer fails the test instead of hanging it). ITIMER_PROF ticks on
/// consumed CPU time, so this loop must actually burn cycles.
uint64_t SpinUntilSamples(uint64_t min_samples) {
  volatile uint64_t sink = 0;
  for (int outer = 0; outer < 20000; ++outer) {
    for (uint64_t i = 0; i < 200000; ++i) sink += i * i;
    if (Profiler::Global().samples_captured() >= min_samples) break;
  }
  return sink;
}

TEST(ProfilerSession, StartStopCapturesSamples) {
  ProfilerOptions options;
  options.sample_hz = 1000;  // fast so the test stays short
  ASSERT_TRUE(Profiler::Global().Start(options));
  EXPECT_TRUE(Profiler::Global().running());
  EXPECT_FALSE(Profiler::Global().Start(options));  // double start rejected

  SpinUntilSamples(5);
  const ProfileDump dump = Profiler::Global().Stop();
  EXPECT_FALSE(Profiler::Global().running());
  EXPECT_EQ(dump.sample_hz, 1000);
  EXPECT_GE(dump.samples, 5u);
  EXPECT_FALSE(dump.stacks.empty());
  uint64_t stack_total = 0;
  for (const ProfileStack& stack : dump.stacks) stack_total += stack.count;
  EXPECT_EQ(stack_total, dump.samples);
}

TEST(ProfilerSession, StopWithoutStartReturnsEmptyDump) {
  const ProfileDump dump = Profiler::Global().Stop();
  EXPECT_EQ(dump.samples, 0u);
  EXPECT_TRUE(dump.stacks.empty());
}

TEST(ProfilerSession, TinyBufferCountsDroppedSamples) {
  ProfilerOptions options;
  options.sample_hz = 1000;
  options.max_samples = 16;  // the floor Start() clamps to
  ASSERT_TRUE(Profiler::Global().Start(options));
  SpinUntilSamples(16);
  // Burn a little more CPU so samples arrive after the buffer filled.
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 40000000; ++i) sink += i;
  const ProfileDump dump = Profiler::Global().Stop();
  EXPECT_LE(dump.samples, 16u);
  if (dump.samples == 16u) EXPECT_GT(dump.dropped, 0u);
}

TEST(ProfilerAttribution, SamplesInsideSpanCarryItsPhase) {
  Tracer::Global().Enable();
  ProfilerOptions options;
  options.sample_hz = 1000;
  ASSERT_TRUE(Profiler::Global().Start(options));
  {
    TraceSpan span("profiler-test/spin");
    SpinUntilSamples(20);
  }
  const ProfileDump dump = Profiler::Global().Stop();
  Tracer::Global().Disable();
  (void)Tracer::Global().Drain();

  ASSERT_GE(dump.samples, 1u);
  uint64_t in_phase = 0;
  for (const ProfileStack& stack : dump.stacks) {
    if (stack.phase == "profiler-test/spin") in_phase += stack.count;
  }
  // Everything this thread did between Start and Stop ran inside the span;
  // allow a stray sample on either side of the span's lifetime.
  EXPECT_GE(in_phase + 2, dump.attributed);
  EXPECT_GE(dump.attributed * 10, dump.samples * 9)
      << "expected >=90% of samples attributed, got " << dump.attributed
      << "/" << dump.samples;
}

TEST(ProfilerPhaseStack, PushPopNestAndOverflowAreSafe) {
  EXPECT_EQ(internal::CurrentPhase(), nullptr);
  internal::PushPhase("outer");
  EXPECT_STREQ(internal::CurrentPhase(), "outer");
  internal::PushPhase("inner");
  EXPECT_STREQ(internal::CurrentPhase(), "inner");
  internal::PopPhase();
  EXPECT_STREQ(internal::CurrentPhase(), "outer");
  // Overflowing the fixed-depth stack keeps the deepest recorded phase and
  // must not write out of bounds.
  for (int i = 0; i < 100; ++i) internal::PushPhase("deep");
  EXPECT_STREQ(internal::CurrentPhase(), "deep");
  for (int i = 0; i < 100; ++i) internal::PopPhase();
  EXPECT_STREQ(internal::CurrentPhase(), "outer");
  internal::PopPhase();
  EXPECT_EQ(internal::CurrentPhase(), nullptr);
  internal::PopPhase();  // pop on empty is a no-op
  EXPECT_EQ(internal::CurrentPhase(), nullptr);
}

/// Synthetic dump shared by the exporter goldens.
ProfileDump SampleDump() {
  ProfileDump dump;
  dump.sample_hz = 100;
  dump.samples = 10;
  dump.dropped = 1;
  dump.attributed = 9;
  dump.stacks.push_back(
      ProfileStack{"compress/greedy-pick", {"main", "Greedy", "Score"}, 6});
  dump.stacks.push_back(
      ProfileStack{"compress/greedy-pick", {"main", "Greedy"}, 2});
  dump.stacks.push_back(
      ProfileStack{"whatif/optimize", {"main", "Optimize"}, 1});
  dump.stacks.push_back(ProfileStack{"", {"main"}, 1});
  dump.alloc_enabled = true;
  dump.alloc_total_bytes = 4096;
  dump.alloc_total_count = 8;
  dump.alloc_live_bytes = -128;
  dump.alloc_peak_bytes = 2048;
  dump.alloc_phases.push_back(
      ProfileAllocPhase{"compress/greedy-pick", 3072, 6});
  dump.alloc_phases.push_back(ProfileAllocPhase{"", 1024, 2});
  return dump;
}

TEST(ProfilerExport, CollapsedStacksMatchFlamegraphFormat) {
  const std::string collapsed = CollapsedStacks(SampleDump());
  EXPECT_EQ(collapsed,
            "compress/greedy-pick;main;Greedy;Score 6\n"
            "compress/greedy-pick;main;Greedy 2\n"
            "whatif/optimize;main;Optimize 1\n"
            "(unattributed);main 1\n");
}

TEST(ProfilerExport, CollapsedStacksSanitizeSeparators) {
  ProfileDump dump;
  dump.samples = 1;
  dump.stacks.push_back(ProfileStack{"phase;x", {"fn;y"}, 1});
  EXPECT_EQ(CollapsedStacks(dump), "phase:x;fn:y 1\n");
}

TEST(ProfilerExport, ProfileJsonCarriesScalarsPhasesFramesAndAllocs) {
  ProfileMeta meta;
  meta.label = "run";
  meta.bench = "bench_fig2_scalability";
  meta.git_rev = "abc1234";
  meta.wall_seconds = 2.5;
  const std::string json = ProfileJson(SampleDump(), meta);

  EXPECT_NE(json.find("\"schema\": \"isum-profile-v1\",\n"),
            std::string::npos);
  EXPECT_NE(json.find("\"sample_hz\": 100,\n"), std::string::npos);
  EXPECT_NE(json.find("\"samples\": 10,\n"), std::string::npos);
  EXPECT_NE(json.find("\"attributed_samples\": 9,\n"), std::string::npos);
  EXPECT_NE(json.find("\"attributed_percent\": 90.00,\n"), std::string::npos);
  EXPECT_NE(json.find("\"alloc_live_bytes\": -128,\n"), std::string::npos);
  // Phases aggregate the two greedy-pick stacks and sort descending.
  EXPECT_NE(json.find("{\"name\": \"compress/greedy-pick\", \"samples\": 8, "
                      "\"percent\": 80.00},"),
            std::string::npos);
  EXPECT_NE(json.find("\"(unattributed)\""), std::string::npos);
  // Frame self/total: Greedy is the leaf of one 2-sample stack but appears
  // in 8 samples total.
  EXPECT_NE(json.find("{\"name\": \"Greedy\", \"self\": 2, \"total\": 8}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"Score\", \"self\": 6, \"total\": 6}"),
            std::string::npos);
  EXPECT_NE(
      json.find("{\"name\": \"compress/greedy-pick\", \"bytes\": 3072, "
                "\"count\": 6},"),
      std::string::npos);
}

TEST(ProfilerExport, ProfileJsonIsLineDisciplined) {
  ProfileMeta meta;
  meta.label = "run";
  const std::string json = ProfileJson(SampleDump(), meta);
  // Every line is a complete scalar, object, bracket, or brace — the same
  // discipline as isum-bench-v1, so tracecat's line parser round-trips it.
  size_t start = 0;
  while (start < json.size()) {
    size_t end = json.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = json.substr(start, end - start);
    EXPECT_FALSE(line.empty());
    start = end + 1;
  }
}

#ifdef ISUM_OBS_PROFILING

TEST(ProfilerAlloc, HooksAreCompiledIn) {
  EXPECT_TRUE(Profiler::alloc_hooks_compiled());
}

TEST(ProfilerAlloc, TracksBytesAndPhases) {
  internal::ArmAllocHooks();
  internal::PushPhase("alloc-test/phase");
  {
    std::vector<char> block(1 << 16);
    block[0] = 1;
  }
  internal::PopPhase();
  const internal::AllocSnapshot snapshot = internal::DisarmAllocHooks();
  EXPECT_GE(snapshot.total_bytes, static_cast<uint64_t>(1 << 16));
  EXPECT_GE(snapshot.total_count, 1u);
  EXPECT_GE(snapshot.peak_bytes, static_cast<uint64_t>(1 << 16));
  bool found_phase = false;
  for (const internal::AllocPhaseTotals& phase : snapshot.phases) {
    if (phase.phase != nullptr &&
        std::string(phase.phase) == "alloc-test/phase") {
      found_phase = true;
      EXPECT_GE(phase.bytes, static_cast<uint64_t>(1 << 16));
    }
  }
  EXPECT_TRUE(found_phase);
}

TEST(ProfilerAlloc, DisarmedHooksStopCounting) {
  internal::ArmAllocHooks();
  (void)internal::DisarmAllocHooks();
  {
    std::vector<char> block(1 << 12);
    block[0] = 1;
  }
  internal::ArmAllocHooks();
  const internal::AllocSnapshot snapshot = internal::DisarmAllocHooks();
  // Only what this re-armed window saw; the disarmed vector is invisible.
  EXPECT_LT(snapshot.total_bytes, static_cast<uint64_t>(1 << 12));
}

#else

TEST(ProfilerAlloc, HooksAreCompiledOut) {
  EXPECT_FALSE(Profiler::alloc_hooks_compiled());
}

#endif  // ISUM_OBS_PROFILING

}  // namespace
}  // namespace isum::obs
