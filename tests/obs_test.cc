// Tests for src/obs: metrics instruments, registry snapshots/deltas, the
// scoped-span tracer (driven by a deterministic fake clock), and the
// Chrome-trace / JSONL exporters. Suite names start with `Obs` so the TSan
// CI job picks the concurrency tests up via its --gtest_filter.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace isum::obs {
namespace {

TEST(ObsCounter, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(ObsCounter, ConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(ObsGauge, SetValueReset) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(3.25);
  EXPECT_EQ(g.Value(), 3.25);
  g.Reset();
  EXPECT_EQ(g.Value(), 0.0);
}

TEST(ObsHistogram, CountAndSumAreExact) {
  Histogram h;
  uint64_t want_sum = 0;
  for (uint64_t v = 0; v < 1000; ++v) {
    h.Observe(v);
    want_sum += v;
  }
  EXPECT_EQ(h.TotalCount(), 1000u);
  EXPECT_EQ(h.Sum(), want_sum);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
}

TEST(ObsHistogram, BucketIndexIsMonotonicAndMidpointIsClose) {
  size_t prev = 0;
  for (uint64_t v = 0; v < 100000; ++v) {
    const size_t index = Histogram::BucketIndex(v);
    EXPECT_GE(index, prev) << "v=" << v;
    prev = index;
    if (v >= Histogram::kSubBuckets) {
      // Sub-bucketed power-of-two ranges bound the relative error.
      const double mid = Histogram::BucketMidpoint(index);
      EXPECT_NEAR(mid, static_cast<double>(v), 0.13 * static_cast<double>(v))
          << "v=" << v;
    }
  }
}

TEST(ObsHistogram, QuantilesTrackSortedReference) {
  Histogram h;
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 5000; ++i) {
    // Deterministic spread over ~[1, 1e6] (multiplicative hash, no RNG).
    const uint64_t v = (i * 2654435761u) % 1000000 + 1;
    values.push_back(v);
    h.Observe(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.95, 0.99}) {
    const double reference = static_cast<double>(
        values[static_cast<size_t>(q * (values.size() - 1))]);
    const double estimate = h.Quantile(q);
    // Log-scale buckets have <= ~12.5% relative width; allow slack on top.
    EXPECT_NEAR(estimate, reference, 0.2 * reference) << "q=" << q;
  }
}

TEST(ObsHistogram, ConcurrentObservesAreExact) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (uint64_t i = 0; i < kPerThread; ++i) h.Observe(i % 100 + 1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.TotalCount(), kThreads * kPerThread);
}

TEST(ObsRegistry, ReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("a.calls");
  Counter* c2 = registry.GetCounter("a.calls");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(registry.GetCounter("b.calls"), c1);
  EXPECT_EQ(registry.GetHistogram("a.nanos"),
            registry.GetHistogram("a.nanos"));
}

TEST(ObsRegistry, SnapshotSortsByNameAndReadsValues) {
  MetricsRegistry registry;
  registry.GetCounter("z.last")->Add(7);
  registry.GetCounter("a.first")->Add(3);
  registry.GetGauge("pool.workers")->Set(4.0);
  registry.GetHistogram("lat")->Observe(100);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[1].first, "z.last");
  EXPECT_EQ(snap.CounterValue("z.last"), 7u);
  EXPECT_EQ(snap.CounterValue("missing"), 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 4.0);
  EXPECT_EQ(snap.HistogramCount("lat"), 1u);
}

TEST(ObsRegistry, DeltaSubtractsCountersAndRecomputesQuantiles) {
  MetricsRegistry registry;
  Counter* calls = registry.GetCounter("calls");
  Histogram* lat = registry.GetHistogram("lat");
  calls->Add(5);
  lat->Observe(1000);
  const MetricsSnapshot before = registry.Snapshot();
  calls->Add(7);
  for (int i = 0; i < 100; ++i) lat->Observe(64);
  registry.GetGauge("workers")->Set(8.0);
  const MetricsSnapshot after = registry.Snapshot();

  const MetricsSnapshot delta = MetricsSnapshot::Delta(before, after);
  EXPECT_EQ(delta.CounterValue("calls"), 7u);
  EXPECT_EQ(delta.HistogramCount("lat"), 100u);
  // The single 1000ns observation belongs to `before`; the window median
  // must reflect only the 64ns observations.
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_NEAR(delta.histograms[0].p50, 64.0, 64.0 * 0.2);
  // Gauges keep the `after` value.
  ASSERT_EQ(delta.gauges.size(), 1u);
  EXPECT_EQ(delta.gauges[0].second, 8.0);
}

TEST(ObsRegistry, ResetAllZeroesButKeepsPointersValid) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("calls");
  c->Add(9);
  registry.ResetAll();
  EXPECT_EQ(c->Value(), 0u);
  c->Add(1);
  EXPECT_EQ(registry.Snapshot().CounterValue("calls"), 1u);
}

TEST(ObsRegistry, ConcurrentGetAndAdd) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared")->Add();
        registry.GetHistogram("lat")->Observe(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.Snapshot().CounterValue("shared"), kThreads * 1000u);
}

// --- tracer -----------------------------------------------------------

/// Deterministic span clock: 1000, 2000, 3000, ... nanoseconds.
std::atomic<uint64_t> fake_clock_ticks{0};
uint64_t FakeClock() {
  return (fake_clock_ticks.fetch_add(1, std::memory_order_relaxed) + 1) *
         1000;
}

class ObsTracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fake_clock_ticks.store(0);
    Tracer::Global().SetClockForTest(&FakeClock);
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Drain();
    Tracer::Global().SetClockForTest(nullptr);
    Tracer::Global().SetSampleEvery(1);
  }
};

#ifdef ISUM_OBS_DISABLE_TRACING

TEST_F(ObsTracerTest, CompiledOutSpansRecordNothingEvenWhenEnabled) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  {
    ISUM_TRACE_SPAN("elided");
  }
  tracer.Disable();
  EXPECT_TRUE(tracer.Drain().spans.empty());
}

#else  // tracing compiled in

TEST_F(ObsTracerTest, RecordsNestedSpansWithFakeClock) {
  Tracer& tracer = Tracer::Global();
  tracer.SetCurrentThreadName("main");
  tracer.Enable();  // session start = 1000
  {
    ISUM_TRACE_SPAN("outer");  // begin = 2000
    {
      ISUM_TRACE_SPAN("inner");  // begin = 3000, end = 4000
    }
  }  // end = 5000
  tracer.Disable();
  const TraceDump dump = tracer.Drain();

  ASSERT_EQ(dump.spans.size(), 2u);
  const SpanRecord& outer = dump.spans[0];
  const SpanRecord& inner = dump.spans[1];
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(outer.start_nanos, 1000u);
  EXPECT_EQ(outer.dur_nanos, 3000u);
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(inner.start_nanos, 2000u);
  EXPECT_EQ(inner.dur_nanos, 1000u);
  EXPECT_EQ(outer.tid, inner.tid);
  ASSERT_LT(outer.tid, dump.thread_names.size());
  EXPECT_EQ(dump.thread_names[outer.tid], "main");
}

TEST_F(ObsTracerTest, DisabledSpansRecordNothing) {
  Tracer& tracer = Tracer::Global();
  ASSERT_FALSE(tracer.enabled());
  {
    ISUM_TRACE_SPAN("ghost");
  }
  EXPECT_TRUE(tracer.Drain().spans.empty());
}

TEST_F(ObsTracerTest, EnableStartsAFreshSession) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  {
    ISUM_TRACE_SPAN("first-session");
  }
  tracer.Enable();  // clears the buffered span
  {
    ISUM_TRACE_SPAN("second-session");
  }
  tracer.Disable();
  const TraceDump dump = tracer.Drain();
  ASSERT_EQ(dump.spans.size(), 1u);
  EXPECT_STREQ(dump.spans[0].name, "second-session");
}

TEST_F(ObsTracerTest, ConcurrentSpansFromWorkerThreads) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ISUM_TRACE_SPAN("worker-span");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  tracer.Disable();
  const TraceDump dump = tracer.Drain();
  EXPECT_EQ(dump.spans.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  // Drain output is sorted by start time.
  for (size_t i = 1; i < dump.spans.size(); ++i) {
    EXPECT_LE(dump.spans[i - 1].start_nanos, dump.spans[i].start_nanos);
  }
}

TEST_F(ObsTracerTest, SampleEveryKeepsEveryNthRootTree) {
  Tracer& tracer = Tracer::Global();
  tracer.SetSampleEvery(3);
  tracer.Enable();
  for (int i = 0; i < 9; ++i) {
    ISUM_TRACE_SPAN("root");
    {
      ISUM_TRACE_SPAN("nested");
    }
  }
  tracer.Disable();
  const TraceDump dump = tracer.Drain();
  // Roots 0, 3, 6 are kept, each with its nested child; trees 1-2, 4-5,
  // 7-8 are skipped whole (a sampled-out root drops its subtree too).
  ASSERT_EQ(dump.spans.size(), 6u);
  size_t roots = 0, nested = 0;
  for (const SpanRecord& span : dump.spans) {
    if (span.depth == 0) {
      ++roots;
      EXPECT_STREQ(span.name, "root");
    } else {
      ++nested;
      EXPECT_STREQ(span.name, "nested");
      EXPECT_EQ(span.depth, 1u);
    }
  }
  EXPECT_EQ(roots, 3u);
  EXPECT_EQ(nested, 3u);
}

TEST_F(ObsTracerTest, SampleEveryZeroAndOneRecordEverything) {
  Tracer& tracer = Tracer::Global();
  tracer.SetSampleEvery(0);  // normalized to 1
  EXPECT_EQ(tracer.sample_every(), 1u);
  tracer.Enable();
  for (int i = 0; i < 5; ++i) {
    ISUM_TRACE_SPAN("root");
  }
  tracer.Disable();
  EXPECT_EQ(tracer.Drain().spans.size(), 5u);
}

TEST_F(ObsTracerTest, SamplingStateResetsPerSession) {
  Tracer& tracer = Tracer::Global();
  tracer.SetSampleEvery(2);
  tracer.Enable();
  {
    ISUM_TRACE_SPAN("a");  // root #0: kept
  }
  {
    ISUM_TRACE_SPAN("b");  // root #1: skipped
  }
  // A fresh session restarts the per-thread root counter, so the first
  // root after Enable() is always recorded.
  tracer.Enable();
  {
    ISUM_TRACE_SPAN("c");  // root #0 again: kept
  }
  tracer.Disable();
  const TraceDump dump = tracer.Drain();
  ASSERT_EQ(dump.spans.size(), 1u);
  EXPECT_STREQ(dump.spans[0].name, "c");
}

TEST_F(ObsTracerTest, SpanArgsAreRecordedTypedAndBounded) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  {
    ISUM_TRACE_SPAN_VAR(span, "compress/greedy-pick");
    span.Arg("k", 50)
        .Arg("algorithm", "summary-features")
        .Arg("ratio", 0.5)
        .Arg("threads", uint64_t{8})
        .Arg("dropped", 99);  // fifth arg: past kMaxArgs, silently dropped
  }
  tracer.Disable();
  const TraceDump dump = tracer.Drain();

  ASSERT_EQ(dump.spans.size(), 1u);
  const SpanRecord& span = dump.spans[0];
  ASSERT_EQ(span.num_args, SpanRecord::kMaxArgs);
  EXPECT_STREQ(span.args[0].key, "k");
  EXPECT_EQ(span.args[0].kind, SpanArg::Kind::kInt);
  EXPECT_EQ(span.args[0].int_value, 50);
  EXPECT_STREQ(span.args[1].key, "algorithm");
  EXPECT_EQ(span.args[1].kind, SpanArg::Kind::kString);
  EXPECT_STREQ(span.args[1].string_value, "summary-features");
  EXPECT_STREQ(span.args[2].key, "ratio");
  EXPECT_EQ(span.args[2].kind, SpanArg::Kind::kDouble);
  EXPECT_EQ(span.args[2].double_value, 0.5);
  EXPECT_STREQ(span.args[3].key, "threads");
  EXPECT_EQ(span.args[3].kind, SpanArg::Kind::kInt);
  EXPECT_EQ(span.args[3].int_value, 8);
}

TEST_F(ObsTracerTest, SpanArgsAreDroppedWhenNotRecording) {
  Tracer& tracer = Tracer::Global();
  ASSERT_FALSE(tracer.enabled());
  {
    ISUM_TRACE_SPAN_VAR(span, "ghost");
    span.Arg("k", 50).Arg("label", "unused");  // must be a no-op, not a crash
  }
  EXPECT_TRUE(tracer.Drain().spans.empty());
}

#endif  // ISUM_OBS_DISABLE_TRACING

// --- exporters --------------------------------------------------------

TEST(ObsExport, ChromeTraceJsonGoldenShape) {
  TraceDump dump;
  dump.thread_names = {"main", ""};
  dump.spans.push_back(SpanRecord{"compress/total", 0, 0, 1500, 2500500});
  dump.spans.push_back(SpanRecord{"whatif/optimize", 1, 1, 2000, 999});
  const std::string want =
      "[\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"main\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"thread-1\"}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"name\":\"compress/total\","
      "\"cat\":\"isum\",\"ts\":1.500,\"dur\":2500.500,"
      "\"args\":{\"depth\":0}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"whatif/optimize\","
      "\"cat\":\"isum\",\"ts\":2.000,\"dur\":0.999,"
      "\"args\":{\"depth\":1}}\n"
      "]\n";
  EXPECT_EQ(ChromeTraceJson(dump), want);
}

TEST(ObsExport, SpansJsonlOneObjectPerLine) {
  TraceDump dump;
  dump.thread_names = {"main"};
  dump.spans.push_back(SpanRecord{"advisor/enumerate", 0, 0, 1000, 2000});
  EXPECT_EQ(SpansJsonl(dump),
            "{\"type\":\"span\",\"name\":\"advisor/enumerate\",\"tid\":0,"
            "\"thread\":\"main\",\"depth\":0,\"start_us\":1.000,"
            "\"dur_us\":2.000}\n");
}

TEST(ObsExport, SpanArgsRenderInBothExporters) {
  TraceDump dump;
  dump.thread_names = {"main"};
  SpanRecord span{"compress/greedy-pick", 0, 0, 1500, 2500500};
  span.num_args = 3;
  span.args[0] = SpanArg{"k", SpanArg::Kind::kInt, 50, 0.0, nullptr};
  span.args[1] =
      SpanArg{"algorithm", SpanArg::Kind::kString, 0, 0.0, "summary-features"};
  span.args[2] = SpanArg{"ratio", SpanArg::Kind::kDouble, 0, 0.5, nullptr};
  dump.spans.push_back(span);

  // Chrome trace: args join the object the "depth" field opens.
  EXPECT_EQ(ChromeTraceJson(dump),
            "[\n"
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
            "\"args\":{\"name\":\"main\"}},\n"
            "{\"ph\":\"X\",\"pid\":1,\"tid\":0,"
            "\"name\":\"compress/greedy-pick\","
            "\"cat\":\"isum\",\"ts\":1.500,\"dur\":2500.500,"
            "\"args\":{\"depth\":0,\"k\":50,"
            "\"algorithm\":\"summary-features\",\"ratio\":0.5}}\n"
            "]\n");

  // JSONL: args appear as a nested object only when the span has any, so
  // arg-free span lines keep their historical shape (golden above).
  EXPECT_EQ(SpansJsonl(dump),
            "{\"type\":\"span\",\"name\":\"compress/greedy-pick\",\"tid\":0,"
            "\"thread\":\"main\",\"depth\":0,\"start_us\":1.500,"
            "\"dur_us\":2500.500,\"args\":{\"k\":50,"
            "\"algorithm\":\"summary-features\",\"ratio\":0.5}}\n");
}

TEST(ObsExport, MetricsJsonlCoversAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.GetCounter("whatif.optimizer_calls")->Add(12);
  registry.GetGauge("threadpool.workers")->Set(4.0);
  Histogram* lat = registry.GetHistogram("whatif.optimize_nanos");
  for (int i = 0; i < 10; ++i) lat->Observe(1000);
  const std::string jsonl = MetricsJsonl(registry.Snapshot());
  EXPECT_NE(jsonl.find("{\"type\":\"counter\","
                       "\"name\":\"whatif.optimizer_calls\",\"value\":12}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("{\"type\":\"gauge\","
                       "\"name\":\"threadpool.workers\",\"value\":4}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"histogram\","
                       "\"name\":\"whatif.optimize_nanos\",\"count\":10,"
                       "\"sum\":10000"),
            std::string::npos);
  // One flat object per line: every line starts with '{' and ends with '}'.
  size_t start = 0;
  while (start < jsonl.size()) {
    const size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(jsonl[start], '{');
    EXPECT_EQ(jsonl[end - 1], '}');
    start = end + 1;
  }
}

}  // namespace
}  // namespace isum::obs
