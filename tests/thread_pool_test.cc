// Tests for the thread pool and parallel candidate evaluation determinism.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <optional>

#include "advisor/advisor.h"
#include "common/thread_pool.h"
#include "workload/workload_factory.h"

namespace isum {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(257);
  pool.ParallelFor(257, [&](size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 10; ++batch) {
    pool.ParallelFor(50, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPool, SingleThreadWorks) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.ParallelFor(100, [&](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, ReducedResultsBitIdenticalAcrossThreadCounts) {
  // Determinism contract from the header: workers fill disjoint slots and
  // the caller reduces by index, so the reduced value must be bit-identical
  // for any thread count — including non-associative float accumulation.
  constexpr size_t kItems = 10'000;
  auto run = [&](size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> slots(kItems);
    pool.ParallelFor(kItems, [&](size_t i) {
      // Deliberately rounding-sensitive per-item work.
      const double x = static_cast<double>(i) + 1.0;
      slots[i] = 1.0 / x + 1e-9 * x * x;
    });
    double reduced = 0.0;
    for (double v : slots) reduced += v;  // fixed order: by index
    return reduced;
  };
  const double r1 = run(1);
  const double r2 = run(2);
  const double r8 = run(8);
  // Bit-identical, not just approximately equal.
  EXPECT_EQ(std::memcmp(&r1, &r2, sizeof(double)), 0)
      << r1 << " vs " << r2;
  EXPECT_EQ(std::memcmp(&r1, &r8, sizeof(double)), 0)
      << r1 << " vs " << r8;
}

TEST(ParallelAdvisor, SameRecommendationForAnyThreadCount) {
  workload::GeneratorOptions gen;
  gen.instances_per_template = 2;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  std::vector<advisor::WeightedQuery> queries;
  for (size_t i = 0; i < env.workload->size(); ++i) {
    queries.push_back({&env.workload->query(i).bound, 1.0});
  }
  advisor::DtaStyleAdvisor advisor(env.cost_model.get());

  advisor::TuningOptions serial;
  serial.max_indexes = 10;
  serial.num_threads = 1;
  advisor::TuningOptions parallel = serial;
  parallel.num_threads = 4;

  const auto a = advisor.Tune(queries, serial);
  const auto b = advisor.Tune(queries, parallel);
  EXPECT_EQ(a.configuration.StableHash(), b.configuration.StableHash());
  EXPECT_NEAR(a.final_cost, b.final_cost, a.final_cost * 1e-9);
  ASSERT_EQ(a.configuration.size(), b.configuration.size());
  for (size_t i = 0; i < a.configuration.size(); ++i) {
    EXPECT_TRUE(a.configuration.indexes()[i] == b.configuration.indexes()[i]);
  }
}

}  // namespace
}  // namespace isum
