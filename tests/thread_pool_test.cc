// Tests for the thread pool and parallel candidate evaluation determinism.

#include <gtest/gtest.h>

#include <atomic>
#include <optional>

#include "advisor/advisor.h"
#include "common/thread_pool.h"
#include "workload/workload_factory.h"

namespace isum {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(257);
  pool.ParallelFor(257, [&](size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 10; ++batch) {
    pool.ParallelFor(50, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPool, SingleThreadWorks) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.ParallelFor(100, [&](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 100);
}

TEST(ParallelAdvisor, SameRecommendationForAnyThreadCount) {
  workload::GeneratorOptions gen;
  gen.instances_per_template = 2;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  std::vector<advisor::WeightedQuery> queries;
  for (size_t i = 0; i < env.workload->size(); ++i) {
    queries.push_back({&env.workload->query(i).bound, 1.0});
  }
  advisor::DtaStyleAdvisor advisor(env.cost_model.get());

  advisor::TuningOptions serial;
  serial.max_indexes = 10;
  serial.num_threads = 1;
  advisor::TuningOptions parallel = serial;
  parallel.num_threads = 4;

  const auto a = advisor.Tune(queries, serial);
  const auto b = advisor.Tune(queries, parallel);
  EXPECT_EQ(a.configuration.StableHash(), b.configuration.StableHash());
  EXPECT_NEAR(a.final_cost, b.final_cost, a.final_cost * 1e-9);
  ASSERT_EQ(a.configuration.size(), b.configuration.size());
  for (size_t i = 0; i < a.configuration.size(); ++i) {
    EXPECT_TRUE(a.configuration.indexes()[i] == b.configuration.indexes()[i]);
  }
}

}  // namespace
}  // namespace isum
