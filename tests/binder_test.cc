// Unit tests for the binder: name resolution, predicate classification,
// literal encoding and selectivity estimation.

#include <gtest/gtest.h>

#include "catalog/schema_builder.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "stats/data_generator.h"

namespace isum::sql {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  BinderTest() : stats_(&cat_) {
    catalog::SchemaBuilder b(&cat_);
    b.Table("orders", 1'000'000)
        .Key("o_id", catalog::ColumnType::kInt)
        .Col("o_custkey", catalog::ColumnType::kInt)
        .Col("o_date", catalog::ColumnType::kDate)
        .Col("o_status", catalog::ColumnType::kChar, 1)
        .Col("o_total", catalog::ColumnType::kDecimal);
    b.Table("customer", 100'000)
        .Key("c_id", catalog::ColumnType::kInt)
        .Col("c_nation", catalog::ColumnType::kInt)
        .Col("c_balance", catalog::ColumnType::kDecimal);

    stats::DataGenerator dg;
    Rng rng(1);
    auto set = [&](const char* t, const char* c, stats::Distribution d,
                   uint64_t distinct, double lo, double hi) {
      stats::ColumnDataSpec spec;
      spec.distribution = d;
      spec.distinct = distinct;
      spec.domain_min = lo;
      spec.domain_max = hi;
      const catalog::ColumnId id = cat_.ResolveColumn(t, c);
      stats_.SetStats(id, dg.Generate(spec, cat_.table(id.table).row_count(), rng));
    };
    set("orders", "o_date", stats::Distribution::kUniform, 2000, 18000, 20000);
    set("orders", "o_status", stats::Distribution::kUniform, 4, 0, 4);
    set("orders", "o_total", stats::Distribution::kUniform, 100000, 0, 10000);
    set("orders", "o_custkey", stats::Distribution::kUniform, 100000, 1, 100000);
    set("customer", "c_nation", stats::Distribution::kUniform, 25, 0, 24);
    set("customer", "c_balance", stats::Distribution::kUniform, 50000, -1000, 9000);
  }

  BoundQuery MustBind(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Binder binder(&cat_, &stats_);
    auto bound = binder.Bind(*stmt, sql);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString() << "\nSQL: " << sql;
    return bound.ok() ? std::move(bound).value() : BoundQuery{};
  }

  catalog::Catalog cat_;
  stats::StatsManager stats_;
};

TEST_F(BinderTest, ResolvesTablesAndColumns) {
  BoundQuery q = MustBind("SELECT o_id FROM orders WHERE o_total > 100");
  ASSERT_EQ(q.tables.size(), 1u);
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(cat_.ColumnDebugName(q.filters[0].column), "orders.o_total");
  ASSERT_EQ(q.output_columns.size(), 1u);
  EXPECT_EQ(cat_.ColumnDebugName(q.output_columns[0]), "orders.o_id");
}

TEST_F(BinderTest, ClassifiesEquiJoin) {
  BoundQuery q = MustBind(
      "SELECT * FROM orders, customer WHERE o_custkey = c_id AND c_nation = 3");
  ASSERT_EQ(q.joins.size(), 1u);
  ASSERT_EQ(q.filters.size(), 1u);
  // Join selectivity ~ 1/max(d(o_custkey), d(c_id)).
  EXPECT_NEAR(q.joins[0].selectivity, 1.0 / 100000.0, 1e-7);
}

TEST_F(BinderTest, SameTableColumnEqualityIsNotAJoin) {
  BoundQuery q = MustBind("SELECT * FROM orders WHERE o_id = o_custkey");
  EXPECT_TRUE(q.joins.empty());
  // Single-column? No: two columns of one table -> complex filter on one
  // table with both columns.
  EXPECT_EQ(q.complex_predicates.size(), 1u);
}

TEST_F(BinderTest, RangeSelectivityFromHistogram) {
  BoundQuery q =
      MustBind("SELECT * FROM orders WHERE o_total BETWEEN 0 AND 5000");
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0].op, PredicateOp::kBetween);
  EXPECT_NEAR(q.filters[0].selectivity, 0.5, 0.06);
  EXPECT_TRUE(q.filters[0].sargable);
}

TEST_F(BinderTest, EqualitySelectivityFromDensity) {
  BoundQuery q = MustBind("SELECT * FROM customer WHERE c_nation = 7");
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_NEAR(q.filters[0].selectivity, 1.0 / 25.0, 0.03);
}

TEST_F(BinderTest, InSelectivityIsSumOfEquals) {
  BoundQuery q = MustBind("SELECT * FROM customer WHERE c_nation IN (1, 2, 3)");
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0].op, PredicateOp::kIn);
  EXPECT_NEAR(q.filters[0].selectivity, 3.0 / 25.0, 0.06);
  EXPECT_EQ(q.filters[0].values.size(), 3u);
}

TEST_F(BinderTest, DateLiteralsEncodeToDays) {
  BoundQuery q = MustBind("SELECT * FROM orders WHERE o_date >= '2020-01-01'");
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_DOUBLE_EQ(q.filters[0].values[0], 18262.0);  // days since epoch
}

TEST_F(BinderTest, ArithmeticLiteralFoldsToConstant) {
  BoundQuery q = MustBind("SELECT * FROM orders WHERE o_total < 100 * 2 + 50");
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0].op, PredicateOp::kLt);
  EXPECT_DOUBLE_EQ(q.filters[0].values[0], 250.0);
}

TEST_F(BinderTest, ReversedComparisonNormalized) {
  BoundQuery q = MustBind("SELECT * FROM orders WHERE 500 > o_total");
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0].op, PredicateOp::kLt);  // o_total < 500
}

TEST_F(BinderTest, NotEqualIsNonSargable) {
  BoundQuery q = MustBind("SELECT * FROM orders WHERE o_status <> 'F'");
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_FALSE(q.filters[0].sargable);
  EXPECT_GT(q.filters[0].selectivity, 0.5);
}

TEST_F(BinderTest, LikePrefixSargable) {
  BoundQuery q = MustBind("SELECT * FROM orders WHERE o_status LIKE 'A%'");
  EXPECT_TRUE(q.filters[0].sargable);
  BoundQuery q2 = MustBind("SELECT * FROM orders WHERE o_status LIKE '%A'");
  EXPECT_FALSE(q2.filters[0].sargable);
}

TEST_F(BinderTest, OrBecomesComplexPredicate) {
  BoundQuery q = MustBind(
      "SELECT * FROM orders WHERE o_total > 9000 OR o_status = 'X'");
  EXPECT_TRUE(q.filters.empty());
  ASSERT_EQ(q.complex_predicates.size(), 1u);
  EXPECT_EQ(q.complex_predicates[0].columns.size(), 2u);
  // OR selectivity ~ s1 + s2 - s1 s2; both small here.
  EXPECT_LT(q.complex_predicates[0].selectivity, 0.6);
}

TEST_F(BinderTest, SingleColumnOrIsComplexFilter) {
  BoundQuery q =
      MustBind("SELECT * FROM orders WHERE o_status = 'A' OR o_status = 'B'");
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0].op, PredicateOp::kComplex);
  EXPECT_FALSE(q.filters[0].sargable);
}

TEST_F(BinderTest, GroupByOrderByBound) {
  BoundQuery q = MustBind(
      "SELECT o_status, COUNT(*) FROM orders GROUP BY o_status "
      "ORDER BY o_status DESC");
  ASSERT_EQ(q.group_by_columns.size(), 1u);
  ASSERT_EQ(q.order_by_columns.size(), 1u);
  EXPECT_TRUE(q.order_by_columns[0].second);  // DESC
}

TEST_F(BinderTest, OrderByAliasOfAggregateSkipped) {
  BoundQuery q = MustBind(
      "SELECT o_status, SUM(o_total) AS rev FROM orders GROUP BY o_status "
      "ORDER BY rev DESC");
  EXPECT_TRUE(q.order_by_columns.empty());  // aggregates are not indexable
}

TEST_F(BinderTest, OrderByAliasOfColumnResolves) {
  BoundQuery q =
      MustBind("SELECT o_total AS t FROM orders ORDER BY t");
  ASSERT_EQ(q.order_by_columns.size(), 1u);
  EXPECT_EQ(cat_.ColumnDebugName(q.order_by_columns[0].first),
            "orders.o_total");
}

TEST_F(BinderTest, AggregatesRecorded) {
  BoundQuery q = MustBind(
      "SELECT COUNT(*), SUM(o_total), AVG(c_balance) FROM orders, customer "
      "WHERE o_custkey = c_id");
  ASSERT_EQ(q.aggregates.size(), 3u);
  EXPECT_EQ(q.aggregates[0].kind, AggregateKind::kCount);
  EXPECT_FALSE(q.aggregates[0].argument.valid());
  EXPECT_EQ(q.aggregates[1].kind, AggregateKind::kSum);
  EXPECT_TRUE(q.aggregates[1].argument.valid());
}

TEST_F(BinderTest, TableFilterSelectivityMultiplies) {
  BoundQuery q = MustBind(
      "SELECT * FROM orders WHERE o_status = 'A' AND o_total < 5000");
  const double sel = q.TableFilterSelectivity(q.tables[0].table);
  ASSERT_EQ(q.filters.size(), 2u);
  EXPECT_NEAR(sel, q.filters[0].selectivity * q.filters[1].selectivity, 1e-12);
}

TEST_F(BinderTest, ReferencedColumnsDeduplicated) {
  BoundQuery q = MustBind(
      "SELECT o_total FROM orders WHERE o_total > 10 ORDER BY o_total");
  EXPECT_EQ(q.ReferencedColumns().size(), 1u);
}

TEST_F(BinderTest, AliasResolution) {
  BoundQuery q = MustBind(
      "SELECT o.o_id FROM orders o, customer c WHERE o.o_custkey = c.c_id");
  EXPECT_EQ(q.joins.size(), 1u);
}

TEST_F(BinderTest, TemplateHashStoredOnBoundQuery) {
  BoundQuery a = MustBind("SELECT * FROM orders WHERE o_total > 5");
  BoundQuery b = MustBind("SELECT * FROM orders WHERE o_total > 999");
  EXPECT_EQ(a.template_hash, b.template_hash);
  BoundQuery c = MustBind("SELECT * FROM orders WHERE o_total < 5");
  EXPECT_NE(a.template_hash, c.template_hash);
}

// --- Bind errors. ---

TEST_F(BinderTest, UnknownTableRejected) {
  auto stmt = ParseSelect("SELECT * FROM missing");
  Binder binder(&cat_, &stats_);
  auto bound = binder.Bind(*stmt);
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, UnknownColumnRejected) {
  auto stmt = ParseSelect("SELECT nope FROM orders");
  Binder binder(&cat_, &stats_);
  EXPECT_FALSE(binder.Bind(*stmt).ok());
}

TEST_F(BinderTest, AmbiguousColumnRejected) {
  // Both tables would need a shared column name; add via direct SQL on two
  // tables that do not share names -> craft ambiguity with c_id vs o_id? Use
  // a column present in neither qualified form.
  auto stmt = ParseSelect("SELECT * FROM orders, customer WHERE o_id = c_id AND x.y = 1");
  Binder binder(&cat_, &stats_);
  EXPECT_FALSE(binder.Bind(*stmt).ok());
}

TEST(ParseIsoDateTest, ValidAndInvalid) {
  EXPECT_EQ(ParseIsoDate("1970-01-01"), 0.0);
  EXPECT_EQ(ParseIsoDate("1970-01-02"), 1.0);
  EXPECT_EQ(ParseIsoDate("2000-03-01"), 11017.0);
  EXPECT_FALSE(ParseIsoDate("not-a-date").has_value());
  EXPECT_FALSE(ParseIsoDate("1970/01/01").has_value());
  EXPECT_FALSE(ParseIsoDate("1970-13-01").has_value());
  EXPECT_FALSE(ParseIsoDate("19700101").has_value());
}

TEST(EncodeLiteralTest, NumbersPassThrough) {
  auto lit = LiteralExpression::Number(42.5);
  EXPECT_DOUBLE_EQ(EncodeLiteral(*lit), 42.5);
}

TEST(EncodeLiteralTest, StringsHashStably) {
  auto a1 = LiteralExpression::String("ASIA");
  auto a2 = LiteralExpression::String("ASIA");
  auto b = LiteralExpression::String("EUROPE");
  EXPECT_EQ(EncodeLiteral(*a1), EncodeLiteral(*a2));
  EXPECT_NE(EncodeLiteral(*a1), EncodeLiteral(*b));
}

}  // namespace
}  // namespace isum::sql
