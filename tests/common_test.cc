// Unit tests for src/common: math utilities, RNG, strings, status.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/hash.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace isum {
namespace {

// --- math_util ---

TEST(MathUtil, PearsonPerfectPositive) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(MathUtil, PearsonPerfectNegative) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(MathUtil, PearsonConstantSeriesIsZero) {
  std::vector<double> x = {3, 3, 3};
  std::vector<double> y = {1, 2, 3};
  EXPECT_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(MathUtil, PearsonSizeMismatchIsZero) {
  EXPECT_EQ(PearsonCorrelation({1, 2}, {1, 2, 3}), 0.0);
}

TEST(MathUtil, SpearmanMonotonicNonlinear) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {1, 8, 27, 64, 125};  // monotone, nonlinear
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(MathUtil, SpearmanHandlesTies) {
  std::vector<double> x = {1, 2, 2, 3};
  std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(MathUtil, MeanAndStdDev) {
  std::vector<double> x = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(x), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(x), 2.0);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({1.0}), 0.0);
}

TEST(MathUtil, PercentileInterpolates) {
  std::vector<double> x = {4, 1, 3, 2};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(Percentile(x, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(x, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(x, 50), 2.5);
  EXPECT_EQ(Percentile({}, 50), 0.0);
}

TEST(MathUtil, MinMaxNormalizePaperFormula) {
  // §4.2: w' = w / (max - min); equal weights become 1.
  std::vector<double> v = {1.0, 2.0, 3.0};
  MinMaxNormalize(v);
  EXPECT_DOUBLE_EQ(v[0], 0.5);
  EXPECT_DOUBLE_EQ(v[2], 1.5);
  std::vector<double> flat = {4.0, 4.0};
  MinMaxNormalize(flat);
  EXPECT_DOUBLE_EQ(flat[0], 1.0);
  EXPECT_DOUBLE_EQ(flat[1], 1.0);
}

TEST(MathUtil, ClampBounds) {
  EXPECT_EQ(Clamp(5, 0, 1), 1.0);
  EXPECT_EQ(Clamp(-5, 0, 1), 0.0);
  EXPECT_EQ(Clamp(0.5, 0, 1), 0.5);
}

// --- rng ---

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextUint64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextUint64(13), 13u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values reachable
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.NextGaussian(5.0, 2.0));
  EXPECT_NEAR(Mean(samples), 5.0, 0.1);
  EXPECT_NEAR(StdDev(samples), 2.0, 0.1);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(13);
  auto sample = rng.SampleWithoutReplacement(100, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::set<size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementAllWhenKGeN) {
  Rng rng(13);
  auto sample = rng.SampleWithoutReplacement(5, 10);
  std::set<size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, ForkIndependentStreams) {
  Rng base(42);
  Rng f1 = base.Fork(1);
  Rng f2 = base.Fork(2);
  EXPECT_NE(f1.Next(), f2.Next());
  // Forks are deterministic functions of parent state + id.
  Rng base2(42);
  EXPECT_EQ(base2.Fork(1).Next(), Rng(42).Fork(1).Next());
}

TEST(Zipf, SkewConcentratesMass) {
  Rng rng(5);
  ZipfSampler zipf(1000, 1.3);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) head += (zipf.Sample(rng) <= 10);
  // With skew 1.3 the top-10 ranks should hold a large share.
  EXPECT_GT(head, n / 4);
}

TEST(Zipf, ZeroSkewIsUniform) {
  Rng rng(5);
  ZipfSampler zipf(100, 0.0);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) head += (zipf.Sample(rng) <= 10);
  EXPECT_NEAR(static_cast<double>(head) / n, 0.1, 0.02);
}

TEST(Zipf, SamplesAlwaysInRange) {
  Rng rng(6);
  ZipfSampler zipf(37, 1.7);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = zipf.Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 37u);
  }
}

// --- string_util ---

TEST(StringUtil, SplitKeepsEmptyTokens) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtil, TrimBothEnds) {
  EXPECT_EQ(Trim("  hello\t\n"), "hello");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtil, CaseConversions) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("sum"), "SUM");
  EXPECT_TRUE(EqualsIgnoreCase("GROUP", "group"));
  EXPECT_FALSE(EqualsIgnoreCase("GROUP", "group "));
}

TEST(StringUtil, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

// --- status ---

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v * 2;
}

Status UseParse(int v, int* out) {
  ISUM_ASSIGN_OR_RETURN(*out, ParsePositive(v));
  return Status::OK();
}

TEST(Status, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseParse(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_EQ(UseParse(-1, &out).code(), StatusCode::kInvalidArgument);
}

TEST(Status, StatusOrAccessors) {
  StatusOr<std::string> ok(std::string("v"));
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "v");
  StatusOr<std::string> err(Status::NotFound("x"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

// --- hash ---

TEST(Hash, StableAndDistinct) {
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

}  // namespace
}  // namespace isum
