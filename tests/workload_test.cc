// Tests for the workload container and the four benchmark generators
// (paper Table 2 shapes: query/template/table counts, determinism,
// zero parse/bind failures).

#include <gtest/gtest.h>

#include <optional>

#include "workload/workload_factory.h"

namespace isum::workload {
namespace {

TEST(Workload, AddQueryParsesBindsAndCosts) {
  GeneratorOptions gen;
  gen.instances_per_template = 1;
  GeneratedWorkload env = MakeTpch(gen);
  Workload& w = *env.workload;
  const size_t before = w.size();
  ASSERT_TRUE(w.AddQuery("SELECT COUNT(*) FROM lineitem WHERE l_quantity < 5").ok());
  EXPECT_EQ(w.size(), before + 1);
  EXPECT_GT(w.query(before).base_cost, 0.0);
  EXPECT_NE(w.query(before).template_hash, 0u);
}

TEST(Workload, AddQueryRejectsBadSql) {
  GeneratorOptions gen;
  gen.instances_per_template = 1;
  GeneratedWorkload env = MakeTpch(gen);
  EXPECT_FALSE(env.workload->AddQuery("SELECT FROM nothing").ok());
  EXPECT_FALSE(env.workload->AddQuery("SELECT * FROM no_such_table").ok());
}

TEST(Workload, TemplatesGroupInstances) {
  GeneratorOptions gen;
  gen.instances_per_template = 4;
  GeneratedWorkload env = MakeTpch(gen);
  EXPECT_EQ(env.workload->NumTemplates(), 22u);
  for (const auto& [hash, members] : env.workload->templates()) {
    EXPECT_EQ(members.size(), 4u);
  }
}

TEST(CompressedWorkload, NormalizeWeights) {
  CompressedWorkload c;
  c.entries = {{0, 2.0}, {1, 6.0}};
  c.NormalizeWeights();
  EXPECT_DOUBLE_EQ(c.entries[0].weight, 0.25);
  EXPECT_DOUBLE_EQ(c.entries[1].weight, 0.75);
  CompressedWorkload zero;
  zero.entries = {{0, 0.0}};
  zero.NormalizeWeights();  // no-op, no NaNs
  EXPECT_DOUBLE_EQ(zero.entries[0].weight, 0.0);
}

// --- Generator table shapes (paper Table 2). ---

TEST(Generators, TpchShape) {
  GeneratorOptions gen;
  gen.instances_per_template = 2;
  GeneratedWorkload env = MakeTpch(gen);
  EXPECT_EQ(env.catalog->num_tables(), 8u);
  EXPECT_EQ(env.workload->NumTemplates(), 22u);
  EXPECT_EQ(env.workload->size(), 44u);
  EXPECT_GT(env.workload->TotalCost(), 0.0);
}

TEST(Generators, TpcdsShape) {
  GeneratorOptions gen;
  gen.instances_per_template = 1;
  GeneratedWorkload env = MakeTpcds(gen);
  EXPECT_EQ(env.catalog->num_tables(), 24u);
  EXPECT_EQ(env.workload->NumTemplates(), 91u);
  EXPECT_EQ(env.workload->size(), 91u);
}

TEST(Generators, DsbShapeAndClasses) {
  GeneratorOptions gen;
  gen.instances_per_template = 1;
  GeneratedWorkload env = MakeDsb(gen);
  EXPECT_EQ(env.catalog->num_tables(), 24u);
  EXPECT_EQ(env.workload->NumTemplates(), 52u);
  int spj = 0, agg = 0, complex_count = 0;
  for (size_t i = 0; i < env.workload->size(); ++i) {
    const std::string& tag = env.workload->query(i).tag;
    spj += (tag == "SPJ");
    agg += (tag == "Aggregate");
    complex_count += (tag == "Complex");
  }
  EXPECT_EQ(spj, 18);
  EXPECT_EQ(agg, 17);
  EXPECT_EQ(complex_count, 17);
}

TEST(Generators, DsbClassFilter) {
  GeneratorOptions gen;
  gen.instances_per_template = 1;
  GeneratedWorkload env = MakeDsb(gen, DsbClass::kSpj);
  for (size_t i = 0; i < env.workload->size(); ++i) {
    EXPECT_EQ(env.workload->query(i).tag, "SPJ");
    // SPJ queries have no aggregation.
    EXPECT_TRUE(env.workload->query(i).bound.aggregates.empty());
    EXPECT_TRUE(env.workload->query(i).bound.group_by_columns.empty());
  }
}

TEST(Generators, RealmShape) {
  GeneratedWorkload env = MakeRealM({});
  EXPECT_EQ(env.catalog->num_tables(), 474u);
  // Paper: 473 queries over 456 templates; procedural generation may fall
  // slightly short of the recipe target but must stay in that regime.
  EXPECT_GE(env.workload->NumTemplates(), 440u);
  EXPECT_LE(env.workload->NumTemplates(), 456u);
  EXPECT_GT(env.workload->size(), env.workload->NumTemplates());
  // Near-unique templates: far more templates than any compressed size.
  EXPECT_GT(env.workload->NumTemplates() * 100, env.workload->size() * 90);
}

TEST(Generators, RealmCostSkew) {
  GeneratedWorkload env = MakeRealM({});
  double max_cost = 0.0, total = 0.0;
  for (size_t i = 0; i < env.workload->size(); ++i) {
    max_cost = std::max(max_cost, env.workload->query(i).base_cost);
    total += env.workload->query(i).base_cost;
  }
  // Heavy skew: the most expensive query dominates the average by a lot.
  EXPECT_GT(max_cost, 8.0 * total / static_cast<double>(env.workload->size()));
}

TEST(Generators, DeterministicAcrossRuns) {
  GeneratorOptions gen;
  gen.seed = 7;
  gen.instances_per_template = 1;
  GeneratedWorkload a = MakeTpcds(gen);
  GeneratedWorkload b = MakeTpcds(gen);
  ASSERT_EQ(a.workload->size(), b.workload->size());
  for (size_t i = 0; i < a.workload->size(); ++i) {
    EXPECT_EQ(a.workload->query(i).sql, b.workload->query(i).sql);
    EXPECT_DOUBLE_EQ(a.workload->query(i).base_cost,
                     b.workload->query(i).base_cost);
  }
}

TEST(Generators, SeedChangesParameters) {
  GeneratorOptions g1, g2;
  g1.seed = 1;
  g2.seed = 2;
  g1.instances_per_template = g2.instances_per_template = 1;
  GeneratedWorkload a = MakeTpch(g1);
  GeneratedWorkload b = MakeTpch(g2);
  int differing = 0;
  for (size_t i = 0; i < a.workload->size(); ++i) {
    differing += (a.workload->query(i).sql != b.workload->query(i).sql);
  }
  EXPECT_GT(differing, 10);
}

TEST(Generators, MaxTemplatesCaps) {
  GeneratorOptions gen;
  gen.instances_per_template = 1;
  gen.max_templates = 10;
  GeneratedWorkload env = MakeTpcds(gen);
  EXPECT_EQ(env.workload->NumTemplates(), 10u);
}

TEST(Generators, ByNameDispatch) {
  GeneratorOptions gen;
  gen.instances_per_template = 1;
  gen.max_templates = 5;
  EXPECT_EQ(MakeWorkloadByName("tpch", gen).name, "TPC-H");
  EXPECT_EQ(MakeWorkloadByName("TPC-DS", gen).name, "TPC-DS");
  EXPECT_EQ(MakeWorkloadByName("dsb", gen).name, "DSB");
}

TEST(Generators, AllQueriesHaveIndexableContent) {
  // Every generated query must have bound filters/joins (otherwise ISUM has
  // nothing to featurize) — guards against generator/binder regressions.
  for (const char* name : {"tpch", "tpcds", "dsb"}) {
    GeneratorOptions gen;
    gen.instances_per_template = 1;
    GeneratedWorkload env = MakeWorkloadByName(name, gen);
    for (size_t i = 0; i < env.workload->size(); ++i) {
      const sql::BoundQuery& q = env.workload->query(i).bound;
      EXPECT_FALSE(q.filters.empty() && q.joins.empty() &&
                   q.complex_predicates.empty() && q.group_by_columns.empty() &&
                   q.order_by_columns.empty())
          << name << " query " << i << ": " << env.workload->query(i).sql;
    }
  }
}

TEST(Generators, InstancesShareTemplateSelectivityBand) {
  // Instances of one template are parameter variations: for most templates
  // the SQL text differs between instances. (Templates whose only parameter
  // is an equality on a 2-3 value column can legitimately repeat literals.)
  GeneratorOptions gen;
  gen.instances_per_template = 3;
  gen.max_templates = 20;
  GeneratedWorkload env = MakeTpcds(gen);
  int differing = 0;
  int total = 0;
  for (const auto& [hash, members] : env.workload->templates()) {
    ASSERT_EQ(members.size(), 3u);
    ++total;
    differing += (env.workload->query(members[0]).sql !=
                  env.workload->query(members[1]).sql);
  }
  EXPECT_GE(differing * 10, total * 8);  // >= 80% of templates vary
}

}  // namespace
}  // namespace isum::workload
