// Tests for the CREATE TABLE schema frontend.

#include <gtest/gtest.h>

#include "sql/ddl_parser.h"

namespace isum::sql {
namespace {

TEST(DdlParser, ParsesMultipleTables) {
  catalog::Catalog cat;
  auto n = ParseSchema(
      "CREATE TABLE a (x INT PRIMARY KEY, y VARCHAR(10)) WITH (ROWS = 500);"
      "-- a comment\n"
      "CREATE TABLE b (z BIGINT NOT NULL, w DECIMAL(10, 2));",
      &cat);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2);
  const catalog::Table* a = cat.FindTable("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->row_count(), 500u);
  EXPECT_TRUE(a->column(0).is_key);
  EXPECT_EQ(a->column(1).type, catalog::ColumnType::kVarchar);
  const catalog::Table* b = cat.FindTable("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->row_count(), 1000u);  // default rows
  EXPECT_EQ(b->column(0).type, catalog::ColumnType::kBigInt);
  EXPECT_EQ(b->column(1).type, catalog::ColumnType::kDecimal);
}

TEST(DdlParser, AllTypeSpellings) {
  catalog::Catalog cat;
  auto n = ParseSchema(
      "CREATE TABLE t (a INTEGER, b BIGINT, c DOUBLE, d FLOAT, e REAL, "
      "f NUMERIC(8, 3), g CHAR(5), h TEXT, i DATE, j TIMESTAMP, k BOOLEAN, "
      "l BOOL UNIQUE)",
      &cat);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  const catalog::Table* t = cat.FindTable("t");
  EXPECT_EQ(t->column(0).type, catalog::ColumnType::kInt);
  EXPECT_EQ(t->column(2).type, catalog::ColumnType::kDouble);
  EXPECT_EQ(t->column(5).type, catalog::ColumnType::kDecimal);
  EXPECT_EQ(t->column(6).type, catalog::ColumnType::kChar);
  EXPECT_EQ(t->column(6).width_bytes, 5);
  EXPECT_EQ(t->column(7).type, catalog::ColumnType::kVarchar);
  EXPECT_EQ(t->column(8).type, catalog::ColumnType::kDate);
  EXPECT_EQ(t->column(9).type, catalog::ColumnType::kDate);
  EXPECT_EQ(t->column(10).type, catalog::ColumnType::kBool);
  EXPECT_TRUE(t->column(11).is_key);  // UNIQUE
}

TEST(DdlParser, SchemaUsableForBinding) {
  catalog::Catalog cat;
  ASSERT_TRUE(ParseSchema("CREATE TABLE t (id INT PRIMARY KEY, v INT) "
                          "WITH (ROWS = 100000)",
                          &cat)
                  .ok());
  EXPECT_EQ(cat.FindTable("t")->row_count(), 100000u);
  EXPECT_TRUE(cat.ResolveColumn("t", "v").valid());
}

class DdlErrors : public ::testing::TestWithParam<const char*> {};

TEST_P(DdlErrors, Rejected) {
  catalog::Catalog cat;
  EXPECT_FALSE(ParseSchema(GetParam(), &cat).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    BadDdl, DdlErrors,
    ::testing::Values("CREATE t (x INT)", "CREATE TABLE (x INT)",
                      "CREATE TABLE t (x WIBBLE)", "CREATE TABLE t (x INT",
                      "CREATE TABLE t (x INT) WITH (ROWS 5)",
                      "CREATE TABLE t (x INT PRIMARY)",
                      "CREATE TABLE t (x INT, x INT)",
                      "CREATE TABLE t (x INT); CREATE TABLE t (y INT)"));

TEST(DdlParser, EmptyScriptIsZeroTables) {
  catalog::Catalog cat;
  auto n = ParseSchema("  -- nothing here\n", &cat);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0);
}

}  // namespace
}  // namespace isum::sql
