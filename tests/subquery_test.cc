// Tests for [NOT] EXISTS / [NOT] IN subqueries: parsing, printing,
// templatization, binder flattening into semi/anti joins, optimizer
// cardinality, and execution semantics.

#include <gtest/gtest.h>

#include <optional>

#include "catalog/schema_builder.h"
#include "engine/optimizer.h"
#include "exec/executor.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "sql/templatizer.h"
#include "stats/data_generator.h"
#include "workload/workload_factory.h"

namespace isum::sql {
namespace {

// --- Parse / print / template. ---

TEST(SubqueryParse, ExistsAndNotExists) {
  auto stmt = ParseSelect(
      "SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.x = t.a)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->where->kind(), ExpressionKind::kExists);
  EXPECT_FALSE(static_cast<const ExistsExpression&>(*stmt->where).negated());

  auto neg = ParseSelect(
      "SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.x = t.a)");
  ASSERT_TRUE(neg.ok());
  ASSERT_EQ(neg->where->kind(), ExpressionKind::kExists);
  EXPECT_TRUE(static_cast<const ExistsExpression&>(*neg->where).negated());
}

TEST(SubqueryParse, InSubquery) {
  auto stmt = ParseSelect(
      "SELECT a FROM t WHERE a IN (SELECT x FROM u WHERE u.y > 5)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->where->kind(), ExpressionKind::kInSubquery);
  const auto& in = static_cast<const InSubqueryExpression&>(*stmt->where);
  EXPECT_FALSE(in.negated());
  EXPECT_EQ(in.subquery().from[0].table_name, "u");
}

TEST(SubqueryParse, MixedWithOtherConjuncts) {
  auto stmt = ParseSelect(
      "SELECT a FROM t WHERE b = 1 AND EXISTS (SELECT * FROM u WHERE u.x = "
      "t.a) AND c < 3");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
}

TEST(SubqueryParse, PrintRoundTrip) {
  for (const char* sql :
       {"SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.x = t.a)",
        "SELECT a FROM t WHERE a NOT IN (SELECT x FROM u)",
        "SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.y < 2)"}) {
    auto stmt = ParseSelect(sql);
    ASSERT_TRUE(stmt.ok()) << sql;
    const std::string printed = StatementToSql(*stmt);
    auto again = ParseSelect(printed);
    ASSERT_TRUE(again.ok()) << printed;
    EXPECT_EQ(printed, StatementToSql(*again));
  }
}

TEST(SubqueryTemplate, LiteralsInsideSubqueryMasked) {
  auto a = ParseSelect(
      "SELECT a FROM t WHERE a IN (SELECT x FROM u WHERE u.y > 5)");
  auto b = ParseSelect(
      "SELECT a FROM t WHERE a IN (SELECT x FROM u WHERE u.y > 999)");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(TemplateHash(*a), TemplateHash(*b));
  auto c = ParseSelect(
      "SELECT a FROM t WHERE a IN (SELECT x FROM u WHERE u.z > 5)");
  EXPECT_NE(TemplateHash(*a), TemplateHash(*c));
}

// --- Binder flattening. ---

class SubqueryBindTest : public ::testing::Test {
 protected:
  SubqueryBindTest() : stats_(&cat_) {
    catalog::SchemaBuilder b(&cat_);
    b.Table("t", 100'000)
        .Key("a", catalog::ColumnType::kInt)
        .Col("b", catalog::ColumnType::kInt);
    b.Table("u", 50'000)
        .Key("x", catalog::ColumnType::kInt)
        .Col("y", catalog::ColumnType::kInt)
        .Col("ta", catalog::ColumnType::kInt);  // FK to t.a
    stats::DataGenerator dg;
    Rng rng(1);
    auto set = [&](const char* table, const char* col, uint64_t distinct) {
      stats::ColumnDataSpec spec;
      spec.distinct = distinct;
      spec.domain_min = 0;
      spec.domain_max = static_cast<double>(distinct);
      const catalog::ColumnId id = cat_.ResolveColumn(table, col);
      stats_.SetStats(id, dg.Generate(spec, cat_.table(id.table).row_count(), rng));
    };
    set("t", "b", 100);
    set("u", "y", 100);
    set("u", "ta", 100'000);
  }

  BoundQuery MustBind(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Binder binder(&cat_, &stats_);
    auto bound = binder.Bind(*stmt, sql);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString() << "\n" << sql;
    return bound.ok() ? std::move(bound).value() : BoundQuery{};
  }

  catalog::Catalog cat_;
  stats::StatsManager stats_;
};

TEST_F(SubqueryBindTest, ExistsBecomesSemiJoinedTable) {
  BoundQuery q = MustBind(
      "SELECT b FROM t WHERE b = 3 AND EXISTS (SELECT * FROM u WHERE "
      "u.ta = t.a AND u.y < 10)");
  ASSERT_EQ(q.tables.size(), 2u);
  EXPECT_EQ(q.tables[0].semantics, JoinSemantics::kInner);
  EXPECT_EQ(q.tables[1].semantics, JoinSemantics::kSemi);
  // The correlation became a join; the subquery filter a regular filter.
  ASSERT_EQ(q.joins.size(), 1u);
  EXPECT_EQ(q.filters.size(), 2u);
}

TEST_F(SubqueryBindTest, NotExistsBecomesAntiJoin) {
  BoundQuery q = MustBind(
      "SELECT b FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.ta = t.a)");
  ASSERT_EQ(q.tables.size(), 2u);
  EXPECT_EQ(q.tables[1].semantics, JoinSemantics::kAnti);
}

TEST_F(SubqueryBindTest, InSubqueryAddsEqualityJoin) {
  BoundQuery q = MustBind(
      "SELECT b FROM t WHERE a IN (SELECT ta FROM u WHERE u.y = 7)");
  ASSERT_EQ(q.tables.size(), 2u);
  EXPECT_EQ(q.tables[1].semantics, JoinSemantics::kSemi);
  ASSERT_EQ(q.joins.size(), 1u);
  EXPECT_EQ(cat_.ColumnDebugName(q.joins[0].left) == "t.a" ||
                cat_.ColumnDebugName(q.joins[0].right) == "t.a",
            true);
}

TEST_F(SubqueryBindTest, TemplateHashUsesOriginalSql) {
  BoundQuery sub = MustBind(
      "SELECT b FROM t WHERE a IN (SELECT ta FROM u WHERE u.y = 7)");
  BoundQuery flat = MustBind(
      "SELECT b FROM t, u WHERE a = ta AND u.y = 7");
  EXPECT_NE(sub.template_hash, flat.template_hash);
}

TEST_F(SubqueryBindTest, AliasCollisionRejected) {
  auto stmt = ParseSelect(
      "SELECT b FROM t WHERE EXISTS (SELECT * FROM t WHERE t.b = 1)");
  Binder binder(&cat_, &stats_);
  auto bound = binder.Bind(*stmt);
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kUnimplemented);
}

TEST_F(SubqueryBindTest, AggregatingSubqueryRejected) {
  auto stmt = ParseSelect(
      "SELECT b FROM t WHERE a IN (SELECT ta FROM u GROUP BY ta)");
  Binder binder(&cat_, &stats_);
  EXPECT_FALSE(binder.Bind(*stmt).ok());
}

TEST_F(SubqueryBindTest, NestedSubqueriesFlatten) {
  // u filtered by an inner EXISTS over t2 — needs a third table.
  catalog::SchemaBuilder b(&cat_);
  b.Table("v", 1'000).Key("vk", catalog::ColumnType::kInt).Col("uy", catalog::ColumnType::kInt);
  BoundQuery q = MustBind(
      "SELECT b FROM t WHERE EXISTS (SELECT * FROM u WHERE u.ta = t.a AND "
      "EXISTS (SELECT * FROM v WHERE v.uy = u.y))");
  ASSERT_EQ(q.tables.size(), 3u);
  EXPECT_EQ(q.tables[1].semantics, JoinSemantics::kSemi);
  EXPECT_EQ(q.tables[2].semantics, JoinSemantics::kSemi);
  EXPECT_EQ(q.joins.size(), 2u);
}

}  // namespace
}  // namespace isum::sql

namespace isum::engine {
namespace {

TEST(SubqueryOptimizer, SemiJoinCapsCardinality) {
  workload::GeneratorOptions gen;
  gen.instances_per_template = 1;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  // Q4 (index 3) is the EXISTS template: orders semi-join lineitem.
  const workload::QueryInfo& q4 = env.workload->query(3);
  ASSERT_NE(q4.sql.find("EXISTS"), std::string::npos);
  Optimizer opt(env.cost_model.get());
  const PlanSummary plan = opt.Optimize(q4.bound, Configuration());
  // Orders has ~15M rows (sf10), lineitem 60M: without the semi cap the
  // join would multiply to ~2e6+ rows before aggregation; with it, the
  // pre-aggregation cardinality stays at most the filtered orders count.
  double max_rows = 0.0;
  for (const PlannedTable& pt : plan.tables) {
    max_rows = std::max(max_rows, pt.cumulative_rows);
  }
  const catalog::Table* orders = env.catalog->FindTable("orders");
  EXPECT_LE(max_rows, static_cast<double>(orders->row_count()));
}

TEST(SubqueryOptimizer, WholeWorkloadStillBindsAndCosts) {
  workload::GeneratorOptions gen;
  gen.instances_per_template = 2;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  EXPECT_EQ(env.workload->size(), 44u);  // no template failed
  for (size_t i = 0; i < env.workload->size(); ++i) {
    EXPECT_GT(env.workload->query(i).base_cost, 0.0);
  }
}

}  // namespace
}  // namespace isum::engine

namespace isum::exec {
namespace {

TEST(SubqueryExecutor, SemiAndAntiSemantics) {
  catalog::Catalog cat;
  catalog::SchemaBuilder b(&cat);
  b.Table("outer_t", 1'000).Key("ok", catalog::ColumnType::kInt);
  b.Table("inner_t", 500)
      .Key("ik", catalog::ColumnType::kInt)
      .Col("ofk", catalog::ColumnType::kInt);
  stats::StatsManager stats(&cat);
  stats::DataGenerator dg;
  Rng rng(3);
  {
    // inner.ofk hits only the first half of outer keys.
    stats::ColumnDataSpec spec;
    spec.distinct = 500;
    spec.domain_min = 1;
    spec.domain_max = 500;
    const catalog::ColumnId id = cat.ResolveColumn("inner_t", "ofk");
    stats.SetStats(id, dg.Generate(spec, 500, rng));
  }
  engine::CostModel cm(&cat, &stats);

  auto bind = [&](const char* sql) {
    auto stmt = sql::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok());
    sql::Binder binder(&cat, &stats);
    auto bound = binder.Bind(*stmt, sql);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return std::move(bound).value();
  };

  Database db(&cat, &stats);
  db.MaterializeAll(10'000, 3);
  Executor executor(&db);
  engine::Optimizer opt(&cm);

  const sql::BoundQuery semi = bind(
      "SELECT ok FROM outer_t WHERE EXISTS (SELECT * FROM inner_t WHERE "
      "inner_t.ofk = outer_t.ok)");
  const sql::BoundQuery anti = bind(
      "SELECT ok FROM outer_t WHERE NOT EXISTS (SELECT * FROM inner_t WHERE "
      "inner_t.ofk = outer_t.ok)");
  const ExecutionResult semi_run =
      executor.Execute(semi, opt.Optimize(semi, engine::Configuration()));
  const ExecutionResult anti_run =
      executor.Execute(anti, opt.Optimize(anti, engine::Configuration()));
  // Semi + anti partition the outer table.
  EXPECT_DOUBLE_EQ(semi_run.output_rows + anti_run.output_rows, 1000.0);
  // Semi output can't exceed the outer cardinality nor the number of
  // distinct inner FK values.
  EXPECT_LE(semi_run.output_rows, 500.0);
  EXPECT_GT(semi_run.output_rows, 0.0);
}

}  // namespace
}  // namespace isum::exec
