// Tests for bench/bench_util.h's ObsFlags::Parse: the uniform
// observability-flag handling every bench driver goes through. Parse must
// consume exactly the flags it owns and compact argc/argv around them so
// downstream parsers (google-benchmark's included) see the rest untouched
// and in order.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace isum::bench {
namespace {

/// argv fixture: builds a mutable char*[] from string literals the way
/// main() receives it (Parse rewrites the pointer array in place).
class ArgvFixture {
 public:
  explicit ArgvFixture(std::vector<std::string> args)
      : storage_(std::move(args)) {
    for (std::string& arg : storage_) pointers_.push_back(arg.data());
    argc_ = static_cast<int>(pointers_.size());
  }
  int& argc() { return argc_; }
  char** argv() { return pointers_.data(); }
  std::vector<std::string> Remaining() const {
    std::vector<std::string> out;
    for (int i = 0; i < argc_; ++i) out.emplace_back(pointers_[i]);
    return out;
  }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
  int argc_ = 0;
};

TEST(BenchObsFlags, DefaultsWithNoFlags) {
  ArgvFixture args({"/path/to/bench_fig2", "positional"});
  const ObsFlags flags = ObsFlags::Parse(args.argc(), args.argv());
  EXPECT_EQ(flags.bench_name, "bench_fig2");  // basename of argv[0]
  EXPECT_EQ(flags.bench_label, "run");
  EXPECT_TRUE(flags.trace_path.empty());
  EXPECT_TRUE(flags.profile_path.empty());
  EXPECT_EQ(flags.trace_every, 1u);
  EXPECT_EQ(flags.time_budget_seconds, 0.0);
  EXPECT_EQ(flags.serve_metrics_port, -1);
  EXPECT_EQ(flags.profile_hz, 100);
  EXPECT_FALSE(flags.profile_alloc);
  EXPECT_EQ(args.Remaining(),
            (std::vector<std::string>{"/path/to/bench_fig2", "positional"}));
}

TEST(BenchObsFlags, ConsumesRecognizedFlagsAndKeepsTheRest) {
  ArgvFixture args({"bench", "--scale", "--trace=/tmp/t.json", "0.5",
                    "--bench-json=/tmp/b.json", "--unknown=1", "tail"});
  const ObsFlags flags = ObsFlags::Parse(args.argc(), args.argv());
  EXPECT_EQ(flags.trace_path, "/tmp/t.json");
  EXPECT_EQ(flags.bench_json_path, "/tmp/b.json");
  // Unrecognized arguments survive in their original relative order.
  EXPECT_EQ(args.Remaining(), (std::vector<std::string>{
                                  "bench", "--scale", "0.5", "--unknown=1",
                                  "tail"}));
}

TEST(BenchObsFlags, ParsesEveryFlag) {
  ArgvFixture args({"bench", "--trace=t.json", "--trace-every=4",
                    "--metrics=m.jsonl", "--bench-json=b.json",
                    "--bench-label=campaign", "--journal=j.jsonl",
                    "--serve-metrics=0", "--metrics-snapshot=s.prom",
                    "--faults=whatif:every=7", "--time-budget=2.5",
                    "--profile=p.json", "--profile-hz=250",
                    "--profile-alloc=1"});
  const ObsFlags flags = ObsFlags::Parse(args.argc(), args.argv());
  EXPECT_EQ(flags.trace_path, "t.json");
  EXPECT_EQ(flags.trace_every, 4u);
  EXPECT_EQ(flags.metrics_path, "m.jsonl");
  EXPECT_EQ(flags.bench_json_path, "b.json");
  EXPECT_EQ(flags.bench_label, "campaign");
  EXPECT_EQ(flags.journal_path, "j.jsonl");
  EXPECT_EQ(flags.serve_metrics_port, 0);
  EXPECT_EQ(flags.metrics_snapshot_path, "s.prom");
  EXPECT_EQ(flags.faults_spec, "whatif:every=7");
  EXPECT_DOUBLE_EQ(flags.time_budget_seconds, 2.5);
  EXPECT_EQ(flags.profile_path, "p.json");
  EXPECT_EQ(flags.profile_hz, 250);
  EXPECT_TRUE(flags.profile_alloc);
  // Everything was consumed.
  EXPECT_EQ(args.Remaining(), std::vector<std::string>{"bench"});
}

TEST(BenchObsFlags, ProfileAllocZeroDisables) {
  ArgvFixture args({"bench", "--profile=p.json", "--profile-alloc=0"});
  const ObsFlags flags = ObsFlags::Parse(args.argc(), args.argv());
  EXPECT_EQ(flags.profile_path, "p.json");
  EXPECT_FALSE(flags.profile_alloc);
}

TEST(BenchObsFlags, FlagPrefixesDoNotSwallowLookalikes) {
  // "--trace-every=" shares the "--trace" prefix; both must parse, and a
  // flag-shaped unknown like "--tracer=" must pass through.
  ArgvFixture args({"bench", "--trace-every=9", "--tracer=x"});
  const ObsFlags flags = ObsFlags::Parse(args.argc(), args.argv());
  EXPECT_TRUE(flags.trace_path.empty());
  EXPECT_EQ(flags.trace_every, 9u);
  EXPECT_EQ(args.Remaining(),
            (std::vector<std::string>{"bench", "--tracer=x"}));
}

TEST(BenchObsFlags, BaseNameHandlesPlainAndNestedPaths) {
  EXPECT_EQ(ObsFlags::BaseName("bench_fig2"), "bench_fig2");
  EXPECT_EQ(ObsFlags::BaseName("./build/bench/bench_fig2"), "bench_fig2");
  EXPECT_EQ(ObsFlags::BaseName("/bench_fig2"), "bench_fig2");
}

}  // namespace
}  // namespace isum::bench
