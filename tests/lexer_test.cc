// Unit tests for the SQL lexer.

#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace isum::sql {
namespace {

std::vector<Token> MustTokenize(std::string_view sql) {
  auto result = Tokenize(sql);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : std::vector<Token>{};
}

TEST(Lexer, EmptyInputYieldsEnd) {
  auto tokens = MustTokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].Is(TokenType::kEnd));
}

TEST(Lexer, IdentifiersAndKeywordsAreIdentifiers) {
  auto tokens = MustTokenize("SELECT foo _bar b2z");
  ASSERT_EQ(tokens.size(), 5u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(tokens[i].Is(TokenType::kIdentifier));
  EXPECT_TRUE(tokens[0].Is("select"));  // case-insensitive match
  EXPECT_EQ(tokens[2].text, "_bar");
}

TEST(Lexer, NumbersIntegerFloatExponent) {
  auto tokens = MustTokenize("1 2.5 .75 1e3 2.5E-2");
  EXPECT_DOUBLE_EQ(tokens[0].number, 1.0);
  EXPECT_DOUBLE_EQ(tokens[1].number, 2.5);
  EXPECT_DOUBLE_EQ(tokens[2].number, 0.75);
  EXPECT_DOUBLE_EQ(tokens[3].number, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[4].number, 0.025);
}

TEST(Lexer, StringsWithEscapedQuotes) {
  auto tokens = MustTokenize("'hello' 'it''s'");
  EXPECT_TRUE(tokens[0].Is(TokenType::kString));
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(Lexer, UnterminatedStringIsError) {
  auto result = Tokenize("SELECT 'oops");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(Lexer, MultiCharSymbols) {
  auto tokens = MustTokenize("<= >= <> != = < >");
  EXPECT_EQ(tokens[0].text, "<=");
  EXPECT_EQ(tokens[1].text, ">=");
  EXPECT_EQ(tokens[2].text, "<>");
  EXPECT_EQ(tokens[3].text, "<>");  // != normalizes to <>
  EXPECT_EQ(tokens[4].text, "=");
}

TEST(Lexer, LineCommentsSkipped) {
  auto tokens = MustTokenize("SELECT -- comment here\n 1");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_TRUE(tokens[1].Is(TokenType::kNumber));
}

TEST(Lexer, DotSeparatesQualifiedNames) {
  auto tokens = MustTokenize("t.col");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "t");
  EXPECT_EQ(tokens[1].text, ".");
  EXPECT_EQ(tokens[2].text, "col");
}

TEST(Lexer, BadCharacterIsError) {
  auto result = Tokenize("SELECT @x");
  ASSERT_FALSE(result.ok());
}

TEST(Lexer, OffsetsRecorded) {
  auto tokens = MustTokenize("ab  cd");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 4u);
}

TEST(Lexer, TokenIsNeverMatchesForNonSymbolTypes) {
  auto tokens = MustTokenize("'select' 42");
  EXPECT_FALSE(tokens[0].Is("select"));  // strings never keyword-match
  EXPECT_FALSE(tokens[1].Is("42"));
}

}  // namespace
}  // namespace isum::sql
