// Cross-workload integration tests: the paper's headline property — ISUM's
// compressed workloads tune better than uniform sampling at equal k — must
// hold on every benchmark family, end to end (generate -> compress -> tune
// -> evaluate), with fixed seeds.

#include <gtest/gtest.h>

#include <optional>

#include "baselines/simple.h"
#include "eval/pipeline.h"
#include "workload/workload_factory.h"

namespace isum {
namespace {

struct WorkloadSpec {
  const char* name;
  int instances_per_template;
};

class IntegrationTest : public ::testing::TestWithParam<WorkloadSpec> {};

TEST_P(IntegrationTest, IsumBeatsUniformSamplingEndToEnd) {
  workload::GeneratorOptions gen;
  gen.instances_per_template = GetParam().instances_per_template;
  workload::GeneratedWorkload env =
      workload::MakeWorkloadByName(GetParam().name, gen);
  const workload::Workload& w = *env.workload;
  ASSERT_GT(w.size(), 50u);

  advisor::TuningOptions tuning;
  tuning.max_indexes = 20;
  const eval::TunerFn tuner = eval::MakeDtaTuner(w, tuning);
  const size_t k = 8;

  const double isum_pct =
      eval::RunPipeline(w, core::Isum(&w).Compress(k), tuner, "ISUM")
          .improvement_percent;
  baselines::UniformSamplingCompressor uniform(1);
  const double uniform_pct =
      eval::RunPipeline(w, uniform.Compress(w, k), tuner, "Uniform")
          .improvement_percent;

  EXPECT_GT(isum_pct, 0.0);
  EXPECT_GT(isum_pct, uniform_pct) << GetParam().name;
}

TEST_P(IntegrationTest, CompressedTuningWithinReachOfFullTuning) {
  workload::GeneratorOptions gen;
  gen.instances_per_template = GetParam().instances_per_template;
  workload::GeneratedWorkload env =
      workload::MakeWorkloadByName(GetParam().name, gen);
  const workload::Workload& w = *env.workload;

  advisor::TuningOptions tuning;
  tuning.max_indexes = 20;
  const eval::TunerFn tuner = eval::MakeDtaTuner(w, tuning);

  workload::CompressedWorkload full;
  for (size_t i = 0; i < w.size(); ++i) full.entries.push_back({i, 1.0});
  full.NormalizeWeights();
  const double full_pct =
      eval::RunPipeline(w, full, tuner, "FULL").improvement_percent;

  // A quarter of sqrt-n-scale selection should recover a third of the
  // full-tuning improvement on every family (Fig 3/9a shape).
  const size_t k = 16;
  const double isum_pct =
      eval::RunPipeline(w, core::Isum(&w).Compress(k), tuner, "ISUM")
          .improvement_percent;
  EXPECT_GT(isum_pct, full_pct / 3.0) << GetParam().name;
  EXPECT_LE(isum_pct, full_pct + 1e-6) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(Workloads, IntegrationTest,
                         ::testing::Values(WorkloadSpec{"tpch", 8},
                                           WorkloadSpec{"tpcds", 2},
                                           WorkloadSpec{"dsb", 4}),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace isum
