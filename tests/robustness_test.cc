// Tests for the robustness layer: deadlines, cancellation tokens, time
// budgets, deterministic fault injection, retry/backoff, and graceful
// best-so-far truncation across the pipeline (docs/ROBUSTNESS.md).

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <vector>

#include "advisor/advisor.h"
#include "advisor/dexter_advisor.h"
#include "common/check.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "core/isum.h"
#include "engine/what_if.h"
#include "eval/pipeline.h"
#include "obs/metrics.h"
#include "workload/workload_factory.h"

namespace isum {
namespace {

// --- Deterministic clock / sleep hooks (function pointers, so state is
// static). ---

std::atomic<uint64_t> g_fake_now{0};
uint64_t FakeNow() { return g_fake_now.load(std::memory_order_relaxed); }

std::atomic<uint64_t> g_slept_nanos{0};
std::atomic<uint64_t> g_sleep_calls{0};
void FakeSleep(uint64_t nanos) {
  g_slept_nanos.fetch_add(nanos, std::memory_order_relaxed);
  g_sleep_calls.fetch_add(1, std::memory_order_relaxed);
}

/// RAII: installs the fake clock/sleeper and disarms faults + ambient
/// budget on the way out, so process-global state never leaks across tests.
class RobustnessEnvironment {
 public:
  RobustnessEnvironment() {
    g_fake_now.store(0);
    g_slept_nanos.store(0);
    g_sleep_calls.store(0);
  }
  ~RobustnessEnvironment() {
    SetMonotonicClockForTest(nullptr);
    SetSleepForTest(nullptr);
    FaultInjector::Global().Reset();
    InstallAmbientBudget(TimeBudget());
  }
};

// --- Deadline ---

TEST(DeadlineTest, DefaultIsUnlimited) {
  Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_nanos(), Deadline::kNoDeadline);
}

TEST(DeadlineTest, NonPositiveBudgetExpiresImmediately) {
  EXPECT_TRUE(Deadline::After(0.0).expired());
  EXPECT_TRUE(Deadline::After(-1.0).expired());
}

TEST(DeadlineTest, AbsurdBudgetSaturatesToUnlimited) {
  EXPECT_TRUE(Deadline::After(1e300).unlimited());
}

TEST(DeadlineTest, ExpiresWhenFakeClockPasses) {
  RobustnessEnvironment env;
  SetMonotonicClockForTest(&FakeNow);
  g_fake_now.store(1000);
  const Deadline d = Deadline::AtNanos(5000);
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_nanos(), 4000u);
  g_fake_now.store(5000);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_nanos(), 0u);
}

// --- CancellationToken ---

TEST(CancellationTokenTest, NullTokenIsNeverCancelled) {
  CancellationToken token;
  EXPECT_FALSE(token.cancellable());
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationTokenTest, CancelFiresSharedCopies) {
  const CancellationToken token = CancellationToken::Cancellable();
  const CancellationToken copy = token;
  EXPECT_FALSE(copy.cancelled());
  token.Cancel();
  EXPECT_TRUE(copy.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTokenTest, ChildObservesParentButNotViceVersa) {
  const CancellationToken parent = CancellationToken::Cancellable();
  const CancellationToken child = parent.Child();
  const CancellationToken grandchild = child.Child();
  child.Cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(grandchild.cancelled());
  EXPECT_FALSE(parent.cancelled());
  parent.Cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(grandchild.cancelled());
}

TEST(CancellationTokenTest, ChildOfNullTokenIsFreshRoot) {
  const CancellationToken root = CancellationToken().Child();
  EXPECT_TRUE(root.cancellable());
  EXPECT_FALSE(root.cancelled());
  root.Cancel();
  EXPECT_TRUE(root.cancelled());
}

// --- TimeBudget + stop-reason taxonomy ---

TEST(TimeBudgetTest, UnlimitedBudgetIsAlwaysOk) {
  const TimeBudget budget;
  EXPECT_FALSE(budget.limited());
  EXPECT_FALSE(budget.Expired());
  EXPECT_TRUE(budget.CheckCancelled().ok());
}

TEST(TimeBudgetTest, ExpiredDeadlineReportsDeadlineExceeded) {
  RobustnessEnvironment env;
  SetMonotonicClockForTest(&FakeNow);
  g_fake_now.store(100);
  const TimeBudget budget(Deadline::AtNanos(50));
  EXPECT_TRUE(budget.limited());
  EXPECT_TRUE(budget.Expired());
  const uint64_t before =
      obs::MetricsRegistry::Global().GetCounter("deadline.exceeded")->Value();
  const Status status = budget.CheckCancelled();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(TimeBudget::ReasonFor(status), StopReason::kDeadline);
  EXPECT_EQ(
      obs::MetricsRegistry::Global().GetCounter("deadline.exceeded")->Value(),
      before + 1);
}

TEST(TimeBudgetTest, CancellationWinsOverExpiredDeadline) {
  RobustnessEnvironment env;
  SetMonotonicClockForTest(&FakeNow);
  g_fake_now.store(100);
  const CancellationToken token = CancellationToken::Cancellable();
  token.Cancel();
  const TimeBudget budget(Deadline::AtNanos(50), token);
  const Status status = budget.CheckCancelled();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(TimeBudget::ReasonFor(status), StopReason::kCancelled);
}

TEST(TimeBudgetTest, ReasonForMapsFaultsToKFault) {
  EXPECT_EQ(TimeBudget::ReasonFor(Status::OK()), StopReason::kComplete);
  EXPECT_EQ(TimeBudget::ReasonFor(Status::Unavailable("x")),
            StopReason::kFault);
  EXPECT_EQ(TimeBudget::ReasonFor(Status::Internal("x")), StopReason::kFault);
}

TEST(TimeBudgetTest, StopReasonNamesAreStable) {
  EXPECT_STREQ(StopReasonToString(StopReason::kComplete), "complete");
  EXPECT_STREQ(StopReasonToString(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(StopReasonToString(StopReason::kCancelled), "cancelled");
  EXPECT_STREQ(StopReasonToString(StopReason::kFault), "fault");
}

TEST(TimeBudgetTest, AmbientBudgetBacksUnlimitedLocalBudgets) {
  RobustnessEnvironment env;
  const CancellationToken token = CancellationToken::Cancellable();
  InstallAmbientBudget(TimeBudget(Deadline(), token));
  EXPECT_TRUE(EffectiveBudget(TimeBudget()).limited());
  // A limited local budget wins over the ambient one.
  const TimeBudget local = TimeBudget::After(3600.0);
  EXPECT_EQ(EffectiveBudget(local).deadline().nanos(),
            local.deadline().nanos());
  // Installing an unlimited budget clears the ambient fallback.
  InstallAmbientBudget(TimeBudget());
  EXPECT_FALSE(EffectiveBudget(TimeBudget()).limited());
}

// --- Status error-path round-trips (new codes) ---

TEST(StatusRobustnessTest, NewCodesRoundTrip) {
  const Status deadline = Status::DeadlineExceeded("too slow");
  EXPECT_FALSE(deadline.ok());
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(deadline.ToString().find("DeadlineExceeded"), std::string::npos);
  EXPECT_NE(deadline.ToString().find("too slow"), std::string::npos);

  const Status cancelled = Status::Cancelled("user hit ^C");
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_NE(cancelled.ToString().find("Cancelled"), std::string::npos);

  const Status unavailable = Status::Unavailable("flaky backend");
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_NE(unavailable.ToString().find("Unavailable"), std::string::npos);
}

TEST(StatusRobustnessTest, StatusOrPropagatesRobustnessCodes) {
  const StatusOr<double> or_deadline(Status::DeadlineExceeded("late"));
  ASSERT_FALSE(or_deadline.ok());
  EXPECT_EQ(or_deadline.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(RobustnessDeathTest, CheckOkPrintsDeadlineDetail) {
  EXPECT_DEATH(ISUM_CHECK_OK(Status::DeadlineExceeded("budget blown")),
               "DeadlineExceeded: budget blown");
}

// --- Fault spec parsing ---

class FaultSpecTest : public ::testing::Test {
 protected:
  ~FaultSpecTest() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultSpecTest, ValidSpecConfiguresSitesAndSeed) {
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("{\"seed\":42};"
                             "{\"site\":\"whatif.cost\",\"kind\":\"error\","
                             "\"p\":0.25};"
                             "{\"site\":\"*\",\"kind\":\"latency\",\"p\":1.0,"
                             "\"ms\":0.5}")
                  .ok());
  EXPECT_TRUE(FaultInjector::Armed());
  EXPECT_EQ(FaultInjector::Global().seed(), 42u);
  const std::vector<std::string> sites =
      FaultInjector::Global().ConfiguredSites();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0], "whatif.cost");
  EXPECT_EQ(sites[1], "*");
}

TEST_F(FaultSpecTest, EmptySpecDisarms) {
  ASSERT_TRUE(
      FaultInjector::Global()
          .Configure("{\"site\":\"x\",\"kind\":\"error\",\"p\":1.0}")
          .ok());
  EXPECT_TRUE(FaultInjector::Armed());
  ASSERT_TRUE(FaultInjector::Global().Configure("").ok());
  EXPECT_FALSE(FaultInjector::Armed());
  EXPECT_TRUE(CheckFault("x").ok());
}

TEST_F(FaultSpecTest, MalformedJsonSurfacesParseErrors) {
  // Each spec exercises a different jsonl.cc malformed-input branch; none
  // may install a configuration.
  const char* bad_specs[] = {
      "{\"site\":\"x\",\"kind\":\"error\"}",           // missing p
      "{\"kind\":\"error\",\"p\":1.0}",                // missing site
      "{\"site\":\"x\",\"p\":1.0}",                    // missing kind
      "{\"site\":\"x\",\"kind\":\"error\",\"p\":}",    // number cut off
      "{\"seed\":\"not-a-number\"}",                   // wrong value type
      "{\"site\":\"x\",\"kind\":\"error\",\"p\":abc}"  // garbage number
  };
  for (const char* spec : bad_specs) {
    const Status status = FaultInjector::Global().Configure(spec);
    EXPECT_FALSE(status.ok()) << spec;
    EXPECT_EQ(status.code(), StatusCode::kParseError) << spec;
    EXPECT_FALSE(FaultInjector::Armed()) << spec;
  }
}

TEST_F(FaultSpecTest, SemanticErrorsAreInvalidArgument) {
  const char* bad_specs[] = {
      "{\"site\":\"x\",\"kind\":\"panic\",\"p\":1.0}",         // unknown kind
      "{\"site\":\"x\",\"kind\":\"error\",\"p\":1.5}",         // p > 1
      "{\"site\":\"x\",\"kind\":\"error\",\"p\":-0.1}",        // p < 0
      "{\"seed\":-3}",                                         // negative seed
      "{\"site\":\"x\",\"kind\":\"latency\",\"p\":1,\"ms\":-1}"  // ms < 0
  };
  for (const char* spec : bad_specs) {
    const Status status = FaultInjector::Global().Configure(spec);
    EXPECT_FALSE(status.ok()) << spec;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << spec;
  }
}

TEST_F(FaultSpecTest, ErrorFaultReturnsUnavailableNamingTheSite) {
  ASSERT_TRUE(
      FaultInjector::Global()
          .Configure("{\"site\":\"compress.select\",\"kind\":\"error\","
                     "\"p\":1.0}")
          .ok());
  const Status status = CheckFault("compress.select");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.ToString().find("compress.select"), std::string::npos);
  // Unmatched sites are untouched.
  EXPECT_TRUE(CheckFault("other.site").ok());
  EXPECT_GE(FaultInjector::Global().injected(), 1u);
}

TEST_F(FaultSpecTest, DecisionStreamIsDeterministicPerSeed) {
  const std::string spec =
      "{\"seed\":7};{\"site\":\"s\",\"kind\":\"error\",\"p\":0.5}";
  std::vector<bool> first;
  ASSERT_TRUE(FaultInjector::Global().Configure(spec).ok());
  for (int i = 0; i < 64; ++i) first.push_back(!CheckFault("s").ok());
  // Reconfiguring the same spec resets the stream: identical decisions.
  ASSERT_TRUE(FaultInjector::Global().Configure(spec).ok());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(!CheckFault("s").ok(), first[i]) << "invocation " << i;
  }
  // A p=0.5 stream must actually mix failures and successes.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
  // A different seed produces a different stream.
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("{\"seed\":8};"
                             "{\"site\":\"s\",\"kind\":\"error\",\"p\":0.5}")
                  .ok());
  std::vector<bool> second;
  for (int i = 0; i < 64; ++i) second.push_back(!CheckFault("s").ok());
  EXPECT_NE(first, second);
}

TEST_F(FaultSpecTest, LatencyFaultSleepsAndProceeds) {
  RobustnessEnvironment env;
  SetSleepForTest(&FakeSleep);
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("{\"site\":\"slow.site\",\"kind\":\"latency\","
                             "\"p\":1.0,\"ms\":2.5}")
                  .ok());
  EXPECT_TRUE(CheckFault("slow.site").ok());  // delayed, not failed
  EXPECT_EQ(g_sleep_calls.load(), 1u);
  EXPECT_EQ(g_slept_nanos.load(), 2'500'000u);
}

// --- What-if retry/backoff ---

class WhatIfRetryTest : public ::testing::Test {
 protected:
  WhatIfRetryTest() {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 1;
    env_ = workload::MakeTpch(gen);
  }
  ~WhatIfRetryTest() override {
    SetSleepForTest(nullptr);
    FaultInjector::Global().Reset();
  }

  std::optional<workload::GeneratedWorkload> env_;
};

TEST_F(WhatIfRetryTest, PersistentFaultExhaustsRetriesDeterministically) {
  SetSleepForTest(&FakeSleep);
  g_slept_nanos.store(0);
  g_sleep_calls.store(0);
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("{\"site\":\"whatif.cost\",\"kind\":\"error\","
                             "\"p\":1.0}")
                  .ok());
  engine::WhatIfOptimizer what_if(env_->cost_model.get());
  const StatusOr<double> cost =
      what_if.TryCost(env_->workload->query(0).bound, engine::Configuration());
  ASSERT_FALSE(cost.ok());
  EXPECT_EQ(cost.status().code(), StatusCode::kUnavailable);
  const int expected_retries = what_if.retry_policy().max_attempts - 1;
  EXPECT_EQ(what_if.retry_attempts(), static_cast<uint64_t>(expected_retries));
  EXPECT_EQ(g_sleep_calls.load(), static_cast<uint64_t>(expected_retries));
  // Backoff jitter is seeded: the exact nanos slept replay bit-identically.
  const uint64_t first_run_nanos = g_slept_nanos.load();
  EXPECT_GT(first_run_nanos, 0u);
  g_slept_nanos.store(0);
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("{\"site\":\"whatif.cost\",\"kind\":\"error\","
                             "\"p\":1.0}")
                  .ok());
  engine::WhatIfOptimizer replay(env_->cost_model.get());
  const StatusOr<double> again =
      replay.TryCost(env_->workload->query(0).bound, engine::Configuration());
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(g_slept_nanos.load(), first_run_nanos);
}

TEST_F(WhatIfRetryTest, TransientFaultSucceedsAfterRetries) {
  SetSleepForTest(&FakeSleep);
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("{\"seed\":7};"
                             "{\"site\":\"whatif.cost\",\"kind\":\"error\","
                             "\"p\":0.5}")
                  .ok());
  engine::WhatIfOptimizer what_if(env_->cost_model.get());
  engine::RetryPolicy policy;
  policy.max_attempts = 16;  // p=0.5^16: success effectively guaranteed
  what_if.set_retry_policy(policy);
  uint64_t retries = 0;
  for (size_t q = 0; q < env_->workload->size() && q < 8; ++q) {
    const StatusOr<double> cost = what_if.TryCost(
        env_->workload->query(q).bound, engine::Configuration());
    ASSERT_TRUE(cost.ok()) << cost.status().ToString();
    EXPECT_GT(*cost, 0.0);
  }
  retries = what_if.retry_attempts();
  EXPECT_GT(retries, 0u);  // a p=0.5 stream must have failed at least once
}

TEST_F(WhatIfRetryTest, CacheHitsBypassFaultInjection) {
  engine::WhatIfOptimizer what_if(env_->cost_model.get());
  const double clean =
      what_if.Cost(env_->workload->query(0).bound, engine::Configuration());
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("{\"site\":\"whatif.cost\",\"kind\":\"error\","
                             "\"p\":1.0}")
                  .ok());
  // The memoized answer needs no optimizer call, so no fault can fire.
  const StatusOr<double> cached =
      what_if.TryCost(env_->workload->query(0).bound, engine::Configuration());
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(*cached, clean);
}

TEST_F(WhatIfRetryTest, ExpiredBudgetFailsFastWithoutOptimizerWork) {
  engine::WhatIfOptimizer what_if(env_->cost_model.get());
  const TimeBudget expired = TimeBudget::After(0.0);
  const StatusOr<double> cost = what_if.TryCost(
      env_->workload->query(0).bound, engine::Configuration(), expired);
  ASSERT_FALSE(cost.ok());
  EXPECT_EQ(cost.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(what_if.optimizer_calls(), 0u);
}

// --- Pipeline-level truncation: compression, tuning, evaluation ---

class PipelineBudgetTest : public ::testing::Test {
 protected:
  PipelineBudgetTest() {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 2;
    env_ = workload::MakeTpch(gen);
    for (size_t i = 0; i < env_->workload->size(); ++i) {
      queries_.push_back({&env_->workload->query(i).bound, 1.0});
    }
  }
  ~PipelineBudgetTest() override {
    SetMonotonicClockForTest(nullptr);
    FaultInjector::Global().Reset();
    InstallAmbientBudget(TimeBudget());
  }

  std::optional<workload::GeneratedWorkload> env_;
  std::vector<advisor::WeightedQuery> queries_;
};

TEST_F(PipelineBudgetTest, CompressUnderExpiredBudgetReturnsValidPrefix) {
  core::IsumOptions options;
  options.budget = TimeBudget::After(0.0);
  const workload::CompressedWorkload out =
      core::Isum(&*env_->workload, options).Compress(10);
  EXPECT_EQ(out.stop_reason, StopReason::kDeadline);
  EXPECT_TRUE(out.entries.empty());  // expired before the first round
}

TEST_F(PipelineBudgetTest, CompressDeadlineMidSelectionKeepsPrefix) {
  // Fake clock: each greedy round checks the budget once, so advancing the
  // clock past the deadline after N checks yields exactly N selections.
  SetMonotonicClockForTest(&FakeNow);
  g_fake_now.store(0);
  core::IsumOptions options;
  options.budget = TimeBudget(Deadline::AtNanos(1));

  // Baseline: the same compression unbudgeted.
  const workload::CompressedWorkload full =
      core::Isum(&*env_->workload).Compress(10);
  ASSERT_GT(full.entries.size(), 3u);
  EXPECT_EQ(full.stop_reason, StopReason::kComplete);

  // Budgeted run with a clock that expires after three round checks. The
  // budget is polled once per greedy round (feature extraction reads no
  // clock), so rounds 1-3 complete and round 4 stops.
  static std::atomic<int> checks{0};
  checks.store(0);
  SetMonotonicClockForTest(+[]() -> uint64_t {
    return checks.fetch_add(1, std::memory_order_relaxed) < 3 ? 0u : 10u;
  });
  const workload::CompressedWorkload truncated =
      core::Isum(&*env_->workload, options).Compress(10);
  EXPECT_EQ(truncated.stop_reason, StopReason::kDeadline);
  ASSERT_EQ(truncated.entries.size(), 3u);
  // The truncated result is a prefix of the full greedy selection.
  for (size_t i = 0; i < truncated.entries.size(); ++i) {
    EXPECT_EQ(truncated.entries[i].query_index, full.entries[i].query_index);
  }
}

TEST_F(PipelineBudgetTest, CancellationStopsCompressionWithStopReason) {
  const CancellationToken token = CancellationToken::Cancellable();
  token.Cancel();
  core::IsumOptions options;
  options.budget = TimeBudget(Deadline(), token);
  const workload::CompressedWorkload out =
      core::Isum(&*env_->workload, options).Compress(10);
  EXPECT_EQ(out.stop_reason, StopReason::kCancelled);
  EXPECT_TRUE(out.entries.empty());
}

TEST_F(PipelineBudgetTest, TuneWithSmallBudgetReturnsPromptlyTagged) {
  // The acceptance bar: a 10ms budget returns well within ~2x of the budget
  // (we allow generous CI slack but assert way under a second) and tags the
  // result with stop_reason=deadline while staying internally valid.
  advisor::TuningOptions options;
  options.max_indexes = 20;
  options.budget = TimeBudget::After(0.010);
  advisor::DtaStyleAdvisor advisor(env_->cost_model.get());
  const uint64_t start = MonotonicNanos();
  const advisor::TuningResult result = advisor.Tune(queries_, options);
  const double elapsed = static_cast<double>(MonotonicNanos() - start) * 1e-9;
  EXPECT_LT(elapsed, 1.0);
  EXPECT_EQ(result.stop_reason, StopReason::kDeadline);
  EXPECT_LE(result.final_cost, result.initial_cost + 1e-9);
}

TEST_F(PipelineBudgetTest, TuneUnlimitedBudgetIsComplete) {
  advisor::TuningOptions options;
  options.max_indexes = 4;
  advisor::DtaStyleAdvisor advisor(env_->cost_model.get());
  const advisor::TuningResult result = advisor.Tune(queries_, options);
  EXPECT_EQ(result.stop_reason, StopReason::kComplete);
  EXPECT_EQ(result.retry_attempts, 0u);
}

TEST_F(PipelineBudgetTest, ExplicitBudgetMatchesLegacySecondsKnob) {
  // The TimeBudget field and the legacy time_budget_seconds knob agree: an
  // effectively-zero budget through either path truncates the same way.
  advisor::DtaStyleAdvisor advisor(env_->cost_model.get());
  advisor::TuningOptions via_budget;
  via_budget.budget = TimeBudget::After(1e-9);
  advisor::TuningOptions via_seconds;
  via_seconds.time_budget_seconds = 1e-9;
  const auto a = advisor.Tune(queries_, via_budget);
  const auto b = advisor.Tune(queries_, via_seconds);
  EXPECT_EQ(a.configuration.StableHash(), b.configuration.StableHash());
  EXPECT_EQ(a.stop_reason, StopReason::kDeadline);
  EXPECT_EQ(b.stop_reason, StopReason::kDeadline);
}

TEST_F(PipelineBudgetTest, DexterAdvisorHonorsCancellation) {
  const CancellationToken token = CancellationToken::Cancellable();
  token.Cancel();
  advisor::DexterOptions options;
  options.budget = TimeBudget(Deadline(), token);
  advisor::DexterStyleAdvisor advisor(env_->cost_model.get());
  const advisor::TuningResult result = advisor.Tune(queries_, options);
  EXPECT_EQ(result.stop_reason, StopReason::kCancelled);
  EXPECT_EQ(result.configuration.size(), 0u);
}

TEST_F(PipelineBudgetTest, AmbientBudgetReachesCompressionEntryPoints) {
  InstallAmbientBudget(TimeBudget::After(0.0));
  const workload::CompressedWorkload out =
      core::Isum(&*env_->workload).Compress(10);
  EXPECT_EQ(out.stop_reason, StopReason::kDeadline);
  InstallAmbientBudget(TimeBudget());
}

TEST_F(PipelineBudgetTest, RunPipelinePropagatesStopReason) {
  // Compression truncation is reported even when tuning completes.
  workload::CompressedWorkload compressed =
      core::Isum(&*env_->workload).Compress(4);
  compressed.stop_reason = StopReason::kDeadline;
  advisor::TuningOptions options;
  options.max_indexes = 2;
  const eval::EvaluationResult result =
      eval::RunPipeline(*env_->workload, compressed,
                        eval::MakeDtaTuner(*env_->workload, options), "ISUM");
  EXPECT_EQ(result.stop_reason, StopReason::kDeadline);
  EXPECT_EQ(result.tuning.stop_reason, StopReason::kComplete);
}

TEST_F(PipelineBudgetTest, CompressionReplayIsBitIdenticalUnderFixedSeed) {
  const std::string spec =
      "{\"seed\":1234};"
      "{\"site\":\"compress.select\",\"kind\":\"error\",\"p\":0.2}";
  ASSERT_TRUE(FaultInjector::Global().Configure(spec).ok());
  const workload::CompressedWorkload a =
      core::Isum(&*env_->workload).Compress(10);
  ASSERT_TRUE(FaultInjector::Global().Configure(spec).ok());
  const workload::CompressedWorkload b =
      core::Isum(&*env_->workload).Compress(10);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].query_index, b.entries[i].query_index);
    EXPECT_EQ(a.entries[i].weight, b.entries[i].weight);  // bit-identical
  }
}

TEST_F(PipelineBudgetTest, DisarmedFaultsLeaveOutputBitIdentical) {
  const workload::CompressedWorkload clean =
      core::Isum(&*env_->workload).Compress(10);
  // Arm, run under faults, disarm: the clean output must be reproduced
  // exactly afterwards (no hidden state perturbs the algorithms).
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("{\"site\":\"compress.select\",\"kind\":\"error\","
                             "\"p\":0.5}")
                  .ok());
  (void)core::Isum(&*env_->workload).Compress(10);
  FaultInjector::Global().Reset();
  const workload::CompressedWorkload again =
      core::Isum(&*env_->workload).Compress(10);
  EXPECT_EQ(again.stop_reason, StopReason::kComplete);
  ASSERT_EQ(again.entries.size(), clean.entries.size());
  for (size_t i = 0; i < clean.entries.size(); ++i) {
    EXPECT_EQ(again.entries[i].query_index, clean.entries[i].query_index);
    EXPECT_EQ(again.entries[i].weight, clean.entries[i].weight);
  }
}

}  // namespace
}  // namespace isum
