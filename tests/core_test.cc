// Unit tests for the ISUM core: featurization/weighting, utility, benefit,
// update strategies, the two greedy algorithms, summary features (incl. the
// Theorem 3 bound), weighing, and the Isum facade.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>

#include "core/benefit.h"
#include "core/isum.h"
#include "core/similarity.h"
#include "workload/workload_factory.h"

namespace isum::core {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  CoreTest() {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 2;
    env_ = workload::MakeTpch(gen);
  }

  const workload::Workload& W() { return *env_->workload; }

  std::optional<workload::GeneratedWorkload> env_;
};

// --- Featurization (§4.2). ---

TEST_F(CoreTest, FeaturesCoverIndexableColumnsOnly) {
  FeatureSpace space;
  Featurizer featurizer(env_->catalog.get(), env_->stats.get(), &space);
  for (size_t i = 0; i < W().size(); ++i) {
    const SparseVector v = featurizer.Featurize(W().query(i).bound);
    EXPECT_GT(v.nnz(), 0u) << W().query(i).sql;
    for (const auto& e : v.entries()) {
      EXPECT_GT(e.weight, 0.0);
      // Every feature's column belongs to a table the query references.
      EXPECT_TRUE(W().query(i).bound.ReferencesTable(space.column(e.feature).table));
    }
  }
}

TEST_F(CoreTest, RuleAndStatsWeightingDiffer) {
  FeatureSpace space;
  Featurizer featurizer(env_->catalog.get(), env_->stats.get(), &space);
  FeaturizationOptions rule;
  FeaturizationOptions stats;
  stats.scheme = WeightingScheme::kStatsBased;
  int differing = 0;
  for (size_t i = 0; i < 22; ++i) {
    const SparseVector a = featurizer.Featurize(W().query(i).bound, rule);
    const SparseVector b = featurizer.Featurize(W().query(i).bound, stats);
    EXPECT_EQ(a.nnz(), b.nnz());  // same support, different weights
    if (WeightedJaccard(a, b) < 0.999) ++differing;
  }
  EXPECT_GT(differing, 5);
}

TEST_F(CoreTest, TableWeightChangesFeatures) {
  FeatureSpace space;
  Featurizer featurizer(env_->catalog.get(), env_->stats.get(), &space);
  FeaturizationOptions with;
  FeaturizationOptions without;
  without.use_table_weight = false;
  int differing = 0;
  for (size_t i = 0; i < 22; ++i) {
    const sql::BoundQuery& q = W().query(i).bound;
    if (q.tables.size() < 2) continue;  // single-table: weight is uniform
    if (WeightedJaccard(featurizer.Featurize(q, with),
                        featurizer.Featurize(q, without)) < 0.999) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 3);
}

// --- Utility (Definition 2). ---

TEST_F(CoreTest, UtilitiesSumToOne) {
  for (UtilityMode mode :
       {UtilityMode::kCostOnly, UtilityMode::kCostTimesSelectivity}) {
    const std::vector<double> u = ComputeUtilities(W(), mode);
    double total = 0.0;
    for (double v : u) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(CoreTest, CostOnlyUtilityOrdersByCost) {
  const std::vector<double> u = ComputeUtilities(W(), UtilityMode::kCostOnly);
  for (size_t i = 1; i < W().size(); ++i) {
    if (W().query(i).base_cost > W().query(0).base_cost) {
      EXPECT_GT(u[i], u[0] - 1e-15);
    }
  }
}

TEST_F(CoreTest, AverageSelectivityInUnitInterval) {
  for (size_t i = 0; i < W().size(); ++i) {
    const double s = AverageSelectivity(W().query(i).bound);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

// --- Influence and benefit (Definitions 3–4). ---

TEST_F(CoreTest, InfluenceIsSimilarityTimesUtility) {
  CompressionState state(W(), {}, UtilityMode::kCostOnly);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      const double f = Influence(state, i, j);
      if (i == j) {
        EXPECT_EQ(f, 0.0);
      } else {
        EXPECT_NEAR(f, state.Similarity(i, j) * state.utility(j), 1e-12);
      }
    }
  }
}

TEST_F(CoreTest, BenefitAtLeastUtility) {
  CompressionState state(W(), {}, UtilityMode::kCostOnly);
  for (size_t i = 0; i < W().size(); ++i) {
    EXPECT_GE(ConditionalBenefit(state, i), state.utility(i) - 1e-15);
  }
}

// --- Update strategies (§4.3, Figure 13). ---

TEST_F(CoreTest, UtilityUpdateDiscountsSimilarQueries) {
  CompressionState state(W(), {}, UtilityMode::kCostOnly);
  // Query 0 and its same-template sibling (index 1) are highly similar.
  const double sim = state.Similarity(0, 1);
  ASSERT_GT(sim, 0.9);
  const double before = state.utility(1);
  state.SelectAndUpdate(0, UpdateStrategy::kUtilityOnly);
  EXPECT_NEAR(state.utility(1), before * (1.0 - sim), 1e-12);
}

TEST_F(CoreTest, FeatureZeroCoversSelectedColumns) {
  CompressionState state(W(), {}, UtilityMode::kCostOnly);
  state.SelectAndUpdate(0, UpdateStrategy::kUtilityAndFeatureZero);
  // The same-template sibling shares all features: they must all be zeroed.
  EXPECT_TRUE(state.features(1).AllZero());
  // The selected query keeps its own features.
  EXPECT_FALSE(state.features(0).AllZero());
}

TEST_F(CoreTest, NoUpdateLeavesEverythingIntact) {
  CompressionState state(W(), {}, UtilityMode::kCostOnly);
  const double u1 = state.utility(1);
  state.SelectAndUpdate(0, UpdateStrategy::kNone);
  EXPECT_EQ(state.utility(1), u1);
  EXPECT_FALSE(state.features(1).AllZero());
}

TEST_F(CoreTest, WeightSubtractReducesButMayNotZero) {
  CompressionState state(W(), {}, UtilityMode::kCostOnly);
  const double sum_before = state.features(1).Sum();
  state.SelectAndUpdate(0, UpdateStrategy::kUtilityAndWeightSubtract);
  EXPECT_LT(state.features(1).Sum(), sum_before);
}

TEST_F(CoreTest, ResetRestoresOriginalFeatures) {
  CompressionState state(W(), {}, UtilityMode::kCostOnly);
  state.SelectAndUpdate(0, UpdateStrategy::kUtilityAndFeatureZero);
  ASSERT_TRUE(state.features(1).AllZero());
  state.ResetUnselectedFeatures();
  EXPECT_FALSE(state.features(1).AllZero());
  // Selected queries are not reset targets (they're out of the pool).
  EXPECT_TRUE(state.selected(0));
}

// --- Greedy algorithms (Algorithms 1–3). ---

TEST_F(CoreTest, AllPairsSelectsKDistinct) {
  CompressionState state(W(), {}, UtilityMode::kCostOnly);
  SelectionResult result =
      AllPairsGreedySelect(state, 10, UpdateStrategy::kUtilityAndFeatureZero);
  EXPECT_EQ(result.selected.size(), 10u);
  std::set<size_t> uniq(result.selected.begin(), result.selected.end());
  EXPECT_EQ(uniq.size(), 10u);
  EXPECT_EQ(result.selection_benefits.size(), 10u);
}

TEST_F(CoreTest, SummarySelectsKDistinct) {
  CompressionState state(W(), {}, UtilityMode::kCostOnly);
  SelectionResult result =
      SummaryGreedySelect(state, 10, UpdateStrategy::kUtilityAndFeatureZero);
  EXPECT_EQ(result.selected.size(), 10u);
  std::set<size_t> uniq(result.selected.begin(), result.selected.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST_F(CoreTest, SelectionCappedAtWorkloadSize) {
  CompressionState state(W(), {}, UtilityMode::kCostOnly);
  SelectionResult result = AllPairsGreedySelect(
      state, W().size() + 50, UpdateStrategy::kUtilityAndFeatureZero);
  EXPECT_EQ(result.selected.size(), W().size());
}

TEST_F(CoreTest, FirstPickMaximizesBenefit) {
  CompressionState state(W(), {}, UtilityMode::kCostOnly);
  std::vector<double> benefits;
  for (size_t i = 0; i < W().size(); ++i) {
    benefits.push_back(ConditionalBenefit(state, i));
  }
  CompressionState state2(W(), {}, UtilityMode::kCostOnly);
  SelectionResult result =
      AllPairsGreedySelect(state2, 1, UpdateStrategy::kUtilityAndFeatureZero);
  const size_t argmax = static_cast<size_t>(
      std::max_element(benefits.begin(), benefits.end()) - benefits.begin());
  EXPECT_EQ(result.selected[0], argmax);
}

TEST_F(CoreTest, SummaryAgreesWithAllPairsOnEarlyPicks) {
  // The linear-time algorithm approximates all-pairs: their early
  // selections should overlap substantially (the paper's Fig 11 "close").
  CompressionState s1(W(), {}, UtilityMode::kCostOnly);
  CompressionState s2(W(), {}, UtilityMode::kCostOnly);
  const auto a =
      AllPairsGreedySelect(s1, 8, UpdateStrategy::kUtilityAndFeatureZero);
  const auto b =
      SummaryGreedySelect(s2, 8, UpdateStrategy::kUtilityAndFeatureZero);
  std::set<size_t> sa(a.selected.begin(), a.selected.end());
  int overlap = 0;
  for (size_t i : b.selected) overlap += sa.contains(i);
  EXPECT_GE(overlap, 4);
}

// --- Summary features (§6.1, Definition 11, Theorem 3). ---

TEST_F(CoreTest, SummaryIsUtilityWeightedSum) {
  CompressionState state(W(), {}, UtilityMode::kCostOnly);
  const SparseVector summary = ComputeSummaryFeatures(state);
  // Spot-check one feature of query 0.
  const auto& entries = state.features(0).entries();
  ASSERT_FALSE(entries.empty());
  const int f = entries[0].feature;
  double expected = 0.0;
  for (size_t i = 0; i < state.size(); ++i) {
    expected += state.features(i).Get(f) * state.utility(i);
  }
  EXPECT_NEAR(summary.Get(f), expected, 1e-9);
}

TEST_F(CoreTest, SummaryInfluenceWithinTheorem3Bounds) {
  // Theorem 3: R/(n·U_L) <= F(V)/F(W) <= 1/(n·R·U_S) where R is the minimum
  // cross-query ratio of shared column weights, U_S/U_L min/max utilities.
  CompressionState state(W(), {}, UtilityMode::kCostOnly);
  const SparseVector summary = ComputeSummaryFeatures(state);
  const double n = static_cast<double>(state.size());

  double u_min = 1.0, u_max = 0.0, total_u = 0.0;
  for (size_t i = 0; i < state.size(); ++i) {
    u_min = std::min(u_min, state.utility(i));
    u_max = std::max(u_max, state.utility(i));
    total_u += state.utility(i);
  }
  // R over all features present in >1 query.
  double r = 1.0;
  for (size_t f = 0; f < state.feature_space().size(); ++f) {
    double w_min = 1e300, w_max = 0.0;
    int present = 0;
    for (size_t i = 0; i < state.size(); ++i) {
      const double w = state.features(i).Get(static_cast<int>(f));
      if (w > 0.0) {
        ++present;
        w_min = std::min(w_min, w);
        w_max = std::max(w_max, w);
      }
    }
    if (present > 1 && w_max > 0.0) r = std::min(r, w_min / w_max);
  }
  ASSERT_GT(r, 0.0);
  const double lower = r / (n * u_max);
  const double upper = 1.0 / (n * r * std::max(u_min, 1e-12));

  int checked = 0;
  for (size_t s = 0; s < state.size() && checked < 10; ++s) {
    const double fw = InfluenceOnWorkload(state, s);
    if (fw <= 1e-12) continue;
    const double fv = SummaryInfluence(state.features(s), state.utility(s),
                                       total_u, summary);
    const double ratio = fv / fw;
    EXPECT_GE(ratio, lower * 0.999);
    EXPECT_LE(ratio, upper * 1.001);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

// --- Weighing (§7, Algorithms 4–5, Figure 14). ---

TEST_F(CoreTest, WeightsNormalizedAcrossStrategies) {
  Isum isum(&W());
  SelectionResult selection = isum.Select(6);
  for (WeighingStrategy strategy :
       {WeighingStrategy::kNone, WeighingStrategy::kSelectionBenefit,
        WeighingStrategy::kRecalibrated,
        WeighingStrategy::kRecalibratedWithTemplates}) {
    const std::vector<double> weights = WeighSelectedQueries(
        W(), selection, {}, UtilityMode::kCostOnly, strategy);
    ASSERT_EQ(weights.size(), selection.selected.size());
    double total = 0.0;
    for (double w : weights) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(CoreTest, NoneWeighingIsUniform) {
  Isum isum(&W());
  SelectionResult selection = isum.Select(4);
  const std::vector<double> weights = WeighSelectedQueries(
      W(), selection, {}, UtilityMode::kCostOnly, WeighingStrategy::kNone);
  for (double w : weights) EXPECT_DOUBLE_EQ(w, 0.25);
}

TEST_F(CoreTest, TemplateWeighingBoostsRepresentativeInstances) {
  // With 2 instances per template, a selected instance inherits utility from
  // its sibling; weights differ from plain recalibration for some query.
  Isum isum(&W());
  SelectionResult selection = isum.Select(6);
  const auto recal = WeighSelectedQueries(W(), selection, {},
                                          UtilityMode::kCostOnly,
                                          WeighingStrategy::kRecalibrated);
  const auto tmpl = WeighSelectedQueries(
      W(), selection, {}, UtilityMode::kCostOnly,
      WeighingStrategy::kRecalibratedWithTemplates);
  bool any_diff = false;
  for (size_t i = 0; i < recal.size(); ++i) {
    if (std::abs(recal[i] - tmpl[i]) > 1e-6) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

// --- Facade. ---

TEST_F(CoreTest, CompressReturnsWeightedQueries) {
  Isum isum(&W());
  workload::CompressedWorkload compressed = isum.Compress(5);
  ASSERT_EQ(compressed.size(), 5u);
  double total = 0.0;
  for (const auto& e : compressed.entries) {
    EXPECT_LT(e.query_index, W().size());
    total += e.weight;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(CoreTest, VariantsProduceValidCompressions) {
  for (const IsumOptions& options :
       {IsumOptions{}, IsumOptions::StatsVariant(), IsumOptions::NoTableVariant()}) {
    Isum isum(&W(), options);
    EXPECT_EQ(isum.Compress(4).size(), 4u);
  }
}

TEST_F(CoreTest, CompressionIsDeterministic) {
  Isum a(&W());
  Isum b(&W());
  const auto ca = a.Compress(6);
  const auto cb = b.Compress(6);
  ASSERT_EQ(ca.size(), cb.size());
  for (size_t i = 0; i < ca.entries.size(); ++i) {
    EXPECT_EQ(ca.entries[i].query_index, cb.entries[i].query_index);
    EXPECT_DOUBLE_EQ(ca.entries[i].weight, cb.entries[i].weight);
  }
}

TEST_F(CoreTest, AllPairsAlgorithmSelectableViaOptions) {
  IsumOptions options;
  options.algorithm = SelectionAlgorithm::kAllPairs;
  Isum isum(&W(), options);
  EXPECT_EQ(isum.Compress(5).size(), 5u);
}

// --- Ablation similarity measures (Figure 7). ---

TEST_F(CoreTest, SimilarityMeasuresBoundedAndSymmetric) {
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      const double ci = CandidateIndexJaccard(W().query(i).bound,
                                              W().query(j).bound, *env_->stats);
      const double cols =
          IndexableColumnJaccard(W().query(i).bound, W().query(j).bound);
      EXPECT_GE(ci, 0.0);
      EXPECT_LE(ci, 1.0);
      EXPECT_GE(cols, 0.0);
      EXPECT_LE(cols, 1.0);
      if (i == j) {
        EXPECT_DOUBLE_EQ(ci, 1.0);
        EXPECT_DOUBLE_EQ(cols, 1.0);
      }
    }
  }
}

}  // namespace
}  // namespace isum::core
