// Unit tests for src/catalog: tables, columns, resolution, sizes.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/schema_builder.h"

namespace isum::catalog {
namespace {

TEST(Catalog, CreateAndFindTable) {
  Catalog cat;
  auto t = cat.CreateTable("Orders", 1000);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->id(), 0);
  EXPECT_NE(cat.FindTable("orders"), nullptr);  // case-insensitive
  EXPECT_NE(cat.FindTable("ORDERS"), nullptr);
  EXPECT_EQ(cat.FindTable("missing"), nullptr);
}

TEST(Catalog, DuplicateTableRejected) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", 1).ok());
  EXPECT_EQ(cat.CreateTable("T", 1).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(Catalog, DuplicateColumnRejected) {
  Catalog cat;
  Table* t = cat.CreateTable("t", 1).value();
  Column c;
  c.name = "a";
  ASSERT_TRUE(t->AddColumn(c).ok());
  Column c2;
  c2.name = "A";
  EXPECT_EQ(t->AddColumn(c2).status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaBuilderDeathTest, DuplicateTableFailsEvenUnderNdebug) {
  // Regression: these guards were assert()-only, so the default
  // RelWithDebInfo (NDEBUG) build silently returned a builder wrapping a
  // stale table. ISUM_CHECK must fire in every build type.
  Catalog cat;
  SchemaBuilder b(&cat);
  b.Table("t", 100).Col("a", ColumnType::kInt);
  EXPECT_DEATH(b.Table("T", 200), "duplicate table in SchemaBuilder: T");
}

TEST(SchemaBuilderDeathTest, DuplicateColumnFailsEvenUnderNdebug) {
  Catalog cat;
  SchemaBuilder b(&cat);
  EXPECT_DEATH(b.Table("t", 100)
                   .Col("a", ColumnType::kInt)
                   .Col("A", ColumnType::kBigInt),
               "duplicate column in SchemaBuilder: A");
}

TEST(Catalog, ColumnOrdinalsAreDense) {
  Catalog cat;
  Table* t = cat.CreateTable("t", 1).value();
  for (const char* name : {"a", "b", "c"}) {
    Column c;
    c.name = name;
    EXPECT_TRUE(t->AddColumn(c).ok());
  }
  EXPECT_EQ(t->FindColumn("a"), 0);
  EXPECT_EQ(t->FindColumn("c"), 2);
  EXPECT_EQ(t->FindColumn("z"), -1);
}

TEST(Catalog, ResolveQualifiedAndUnqualified) {
  Catalog cat;
  SchemaBuilder b(&cat);
  b.Table("t1", 10).Col("shared", ColumnType::kInt).Col("only1", ColumnType::kInt);
  b.Table("t2", 10).Col("shared", ColumnType::kInt).Col("only2", ColumnType::kInt);

  EXPECT_TRUE(cat.ResolveColumn("t1", "shared").valid());
  EXPECT_TRUE(cat.ResolveColumn("", "only2").valid());
  // Ambiguous unqualified reference resolves to invalid.
  EXPECT_FALSE(cat.ResolveColumn("", "shared").valid());
  EXPECT_FALSE(cat.ResolveColumn("t3", "shared").valid());
  EXPECT_FALSE(cat.ResolveColumn("t1", "only2").valid());
}

TEST(Catalog, RowWidthAndPages) {
  Catalog cat;
  SchemaBuilder b(&cat);
  b.Table("wide", 8192)
      .Col("a", ColumnType::kBigInt)    // 8
      .Col("b", ColumnType::kInt)       // 4
      .Col("c", ColumnType::kChar, 20); // 20
  const Table* t = cat.FindTable("wide");
  // 16 bytes row overhead + 32 bytes data.
  EXPECT_EQ(t->row_width_bytes(), 48);
  EXPECT_EQ(t->data_pages(), 8192u * 48u / 8192u + 1);
}

TEST(Catalog, TotalDataBytesSums) {
  Catalog cat;
  SchemaBuilder b(&cat);
  b.Table("a", 100).Col("x", ColumnType::kInt);
  b.Table("bb", 200).Col("x", ColumnType::kInt);
  EXPECT_EQ(cat.total_data_bytes(), 100u * 20u + 200u * 20u);
}

TEST(Catalog, ColumnDebugName) {
  Catalog cat;
  SchemaBuilder b(&cat);
  b.Table("orders", 10).Col("o_id", ColumnType::kInt);
  const ColumnId id = cat.ResolveColumn("orders", "o_id");
  EXPECT_EQ(cat.ColumnDebugName(id), "orders.o_id");
  EXPECT_EQ(cat.ColumnDebugName(ColumnId{}), "<invalid>");
}

TEST(Catalog, DefaultWidths) {
  EXPECT_EQ(DefaultWidthBytes(ColumnType::kInt, 0), 4);
  EXPECT_EQ(DefaultWidthBytes(ColumnType::kBigInt, 0), 8);
  EXPECT_EQ(DefaultWidthBytes(ColumnType::kChar, 25), 25);
  // Varchars assumed half full plus length header.
  EXPECT_EQ(DefaultWidthBytes(ColumnType::kVarchar, 40), 22);
  EXPECT_EQ(DefaultWidthBytes(ColumnType::kDate, 0), 4);
}

TEST(ColumnId, OrderingAndHash) {
  ColumnId a{1, 2}, b{1, 3}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (ColumnId{1, 2}));
  std::hash<ColumnId> h;
  EXPECT_NE(h(a), h(b));
}

TEST(Catalog, KeyColumnsMarked) {
  Catalog cat;
  SchemaBuilder b(&cat);
  b.Table("t", 10).Key("pk", ColumnType::kInt).Col("v", ColumnType::kInt);
  const Table* t = cat.FindTable("t");
  EXPECT_TRUE(t->column(0).is_key);
  EXPECT_FALSE(t->column(1).is_key);
}

}  // namespace
}  // namespace isum::catalog
