// Tests for the evaluation pipeline and reporting helpers.

#include <gtest/gtest.h>

#include <optional>

#include "eval/pipeline.h"
#include "eval/reporting.h"
#include "workload/workload_factory.h"

namespace isum::eval {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 1;
    env_ = workload::MakeTpch(gen);
  }

  const workload::Workload& W() { return *env_->workload; }

  std::optional<workload::GeneratedWorkload> env_;
};

TEST_F(EvalTest, EmptyConfigurationGivesZeroImprovement) {
  EXPECT_DOUBLE_EQ(WorkloadImprovementPercent(W(), engine::Configuration()),
                   0.0);
}

TEST_F(EvalTest, ImprovementMonotoneUnderSupersetConfigs) {
  // Our optimizer picks the min-cost plan over a larger search space, so a
  // superset configuration can never be worse.
  advisor::TuningOptions options;
  options.max_indexes = 6;
  advisor::DtaStyleAdvisor advisor(env_->cost_model.get());
  std::vector<advisor::WeightedQuery> queries;
  for (size_t i = 0; i < W().size(); ++i) {
    queries.push_back({&W().query(i).bound, 1.0});
  }
  const auto result = advisor.Tune(queries, options);
  engine::Configuration partial;
  double prev = 0.0;
  for (const engine::Index& index : result.configuration.indexes()) {
    partial.Add(index);
    const double imp = WorkloadImprovementPercent(W(), partial);
    EXPECT_GE(imp, prev - 1e-9);
    prev = imp;
  }
}

TEST_F(EvalTest, RunPipelineFillsAllFields) {
  core::Isum isum(&W());
  const auto compressed = isum.Compress(6);
  advisor::TuningOptions options;
  options.max_indexes = 8;
  EvaluationResult r =
      RunPipeline(W(), compressed, MakeDtaTuner(W(), options), "ISUM");
  EXPECT_EQ(r.algorithm, "ISUM");
  EXPECT_EQ(r.k, 6u);
  EXPECT_GT(r.improvement_percent, 0.0);
  EXPECT_GT(r.tuning.optimizer_calls, 0u);
  EXPECT_GE(r.tuning_seconds, 0.0);
  // The registry delta captured by the pipeline must agree exactly with the
  // what-if optimizer's own accessors for this single-threaded run.
  EXPECT_EQ(r.metrics.CounterValue("whatif.optimizer_calls"),
            r.tuning.optimizer_calls);
  EXPECT_EQ(r.metrics.CounterValue("whatif.cache_hits"),
            r.tuning.cache_hits);
  EXPECT_EQ(r.metrics.HistogramCount("whatif.optimize_nanos"),
            r.tuning.optimizer_calls);
}

TEST_F(EvalTest, DexterTunerWorksThroughPipeline) {
  core::Isum isum(&W());
  const auto compressed = isum.Compress(6);
  advisor::DexterOptions options;
  EvaluationResult r =
      RunPipeline(W(), compressed, MakeDexterTuner(W(), options), "ISUM");
  EXPECT_GE(r.improvement_percent, 0.0);
}

TEST_F(EvalTest, IsumCompressorAdapterMatchesFacade) {
  IsumCompressor adapter;
  core::Isum direct(&W());
  const auto a = adapter.Compress(W(), 5);
  const auto b = direct.Compress(5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].query_index, b.entries[i].query_index);
  }
  EXPECT_EQ(adapter.name(), "ISUM");
  EXPECT_EQ(IsumCompressor(core::IsumOptions::StatsVariant(), "ISUM-S").name(),
            "ISUM-S");
}

TEST(Reporting, TableAlignedOutput) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow("b", {2.5});
  const std::string text = t.ToString(false);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("2.50"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Reporting, TableCsvOutput) {
  Table t({"x", "y"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToString(true), "x,y\n1,2\n");
}

TEST(Reporting, RowsPaddedToHeaderCount) {
  Table t({"a", "b", "c"});
  t.AddRow({"only-one"});
  EXPECT_EQ(t.ToString(true), "a,b,c\nonly-one,,\n");
}

TEST(Reporting, ArgHelpers) {
  const char* argv1[] = {"prog", "--csv"};
  EXPECT_TRUE(WantCsv(2, const_cast<char**>(argv1)));
  const char* argv2[] = {"prog"};
  EXPECT_FALSE(WantCsv(1, const_cast<char**>(argv2)));
  const char* argv3[] = {"prog", "--scale", "2.5"};
  EXPECT_DOUBLE_EQ(ScaleArg(3, const_cast<char**>(argv3)), 2.5);
  EXPECT_DOUBLE_EQ(ScaleArg(1, const_cast<char**>(argv2)), 1.0);
}

}  // namespace
}  // namespace isum::eval
