// Runtime behavior of the annotated synchronization shims
// (common/mutex.h). The *static* half — clang's -Wthread-safety proving
// lock discipline — is exercised by the thread_safety_fail compile-fail
// test, which only registers under -DISUM_THREAD_SAFETY=ON (clang builds);
// these tests pin down the runtime semantics every build relies on.

#include "common/mutex.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace isum {
namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // Same-thread re-acquisition would deadlock/UB on std::mutex, so probe
  // from another thread.
  bool acquired = true;
  std::thread prober([&] { acquired = mu.TryLock(); });
  prober.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, LowercaseLockableSpellingsAlias) {
  // CondVar and std::unique_lock reach the mutex through the standard
  // Lockable spellings; both must hit the same underlying mutex.
  Mutex mu;
  mu.lock();
  bool acquired = true;
  std::thread prober([&] { acquired = mu.try_lock(); });
  prober.join();
  EXPECT_FALSE(acquired);
  mu.unlock();
}

TEST(CondVarTest, WaitWakesOnPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = -1;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = 42;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(CondVarTest, NotifyAllReleasesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woke = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      ++woke;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& th : waiters) th.join();
  EXPECT_EQ(woke, kWaiters);
}

}  // namespace
}  // namespace isum
