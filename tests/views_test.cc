// Tests for the materialized-view extension (§10): view candidates,
// matching rules, sizing, the view advisor, and cost-with-views.

#include <gtest/gtest.h>

#include <optional>

#include "views/view_advisor.h"
#include "workload/workload_factory.h"

namespace isum::views {
namespace {

class ViewsTest : public ::testing::Test {
 protected:
  ViewsTest() {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 2;
    env_ = workload::MakeTpch(gen);
  }

  const workload::Workload& W() { return *env_->workload; }

  const sql::BoundQuery& Query(size_t i) { return W().query(i).bound; }

  std::optional<workload::GeneratedWorkload> env_;
};

TEST_F(ViewsTest, CandidateExistsForAggregateQueries) {
  int candidates = 0;
  for (size_t i = 0; i < W().size(); ++i) {
    if (ViewCandidateFor(Query(i)).has_value()) ++candidates;
  }
  // Most TPC-H templates aggregate; a solid majority should be viewable.
  EXPECT_GT(candidates, static_cast<int>(W().size()) / 2);
}

TEST_F(ViewsTest, NoCandidateForNonAggregateOrComplexQueries) {
  for (size_t i = 0; i < W().size(); ++i) {
    const sql::BoundQuery& q = Query(i);
    if (q.aggregates.empty() && q.group_by_columns.empty()) {
      EXPECT_FALSE(ViewCandidateFor(q).has_value()) << W().query(i).sql;
    }
    if (!q.complex_predicates.empty()) {
      EXPECT_FALSE(ViewCandidateFor(q).has_value()) << W().query(i).sql;
    }
  }
}

TEST_F(ViewsTest, CandidateMatchesItsOwnQuery) {
  for (size_t i = 0; i < W().size(); ++i) {
    auto candidate = ViewCandidateFor(Query(i));
    if (candidate.has_value()) {
      EXPECT_TRUE(candidate->Matches(Query(i))) << W().query(i).sql;
    }
  }
}

TEST_F(ViewsTest, CandidateMatchesSameTemplateSiblings) {
  // With 2 instances per template, the candidate from one instance must
  // answer its sibling (different literals, same shape) — that's why filter
  // columns are folded into the view's group-by.
  for (const auto& [hash, members] : W().templates()) {
    auto candidate = ViewCandidateFor(Query(members[0]));
    if (!candidate.has_value()) continue;
    EXPECT_TRUE(candidate->Matches(Query(members[1])))
        << W().query(members[1]).sql;
  }
}

TEST_F(ViewsTest, DifferentJoinCoresDoNotMatch) {
  std::optional<MaterializedView> some;
  for (size_t i = 0; i < W().size(); ++i) {
    auto c = ViewCandidateFor(Query(i));
    if (!c.has_value()) continue;
    if (!some.has_value()) {
      some = c;
      continue;
    }
    if (c->CanonicalKey() != some->CanonicalKey()) {
      // Views from different templates must not cross-match when their
      // table sets differ.
      if (c->tables() != some->tables()) {
        EXPECT_FALSE(some->Matches(Query(i)));
      }
    }
  }
}

TEST_F(ViewsTest, ViewRowsAndSizeBounded) {
  for (size_t i = 0; i < W().size(); ++i) {
    auto c = ViewCandidateFor(Query(i));
    if (!c.has_value()) continue;
    const double rows = c->EstimatedRows(*env_->cost_model);
    EXPECT_GE(rows, 1.0);
    EXPECT_GT(c->SizeBytes(*env_->cost_model), 0u);
  }
}

TEST_F(ViewsTest, AnswerCostBeatsBaseForExpensiveAggregates) {
  // For at least half the viewable queries, answering from the (much
  // smaller) aggregate view must be cheaper than the base plan.
  engine::Optimizer optimizer(env_->cost_model.get());
  int cheaper = 0, viewable = 0;
  for (size_t i = 0; i < W().size(); ++i) {
    auto c = ViewCandidateFor(Query(i));
    if (!c.has_value()) continue;
    ++viewable;
    const double base = optimizer.Cost(Query(i), engine::Configuration());
    if (c->AnswerCost(Query(i), *env_->cost_model) < base) ++cheaper;
  }
  EXPECT_GT(viewable, 0);
  EXPECT_GT(cheaper * 2, viewable);
}

TEST_F(ViewsTest, CostWithViewsNeverWorseThanBase) {
  engine::Optimizer optimizer(env_->cost_model.get());
  std::vector<MaterializedView> views;
  for (size_t i = 0; i < W().size(); i += 3) {
    auto c = ViewCandidateFor(Query(i));
    if (c.has_value()) views.push_back(std::move(*c));
  }
  for (size_t i = 0; i < W().size(); ++i) {
    const double base = optimizer.Cost(Query(i), engine::Configuration());
    EXPECT_LE(CostWithViews(Query(i), views, *env_->cost_model), base + 1e-9);
  }
}

TEST_F(ViewsTest, AdvisorRespectsLimitsAndImproves) {
  std::vector<advisor::WeightedQuery> queries;
  for (size_t i = 0; i < W().size(); ++i) {
    queries.push_back({&Query(i), 1.0});
  }
  ViewAdvisor advisor(env_->cost_model.get());
  ViewTuningOptions options;
  options.max_views = 5;
  const ViewTuningResult result = advisor.Tune(queries, options);
  EXPECT_LE(result.views.size(), 5u);
  EXPECT_GT(result.views.size(), 0u);
  EXPECT_LT(result.final_cost, result.initial_cost);
}

TEST_F(ViewsTest, AdvisorRespectsStorageBudget) {
  std::vector<advisor::WeightedQuery> queries;
  for (size_t i = 0; i < W().size(); ++i) {
    queries.push_back({&Query(i), 1.0});
  }
  ViewAdvisor advisor(env_->cost_model.get());
  ViewTuningOptions options;
  options.max_views = 50;
  options.storage_budget_multiplier = 0.01;
  const ViewTuningResult result = advisor.Tune(queries, options);
  EXPECT_LE(result.storage_bytes,
            static_cast<uint64_t>(0.01 * env_->catalog->total_data_bytes()));
}

TEST_F(ViewsTest, CanonicalKeyStableAndDiscriminating) {
  auto a = ViewCandidateFor(Query(0));
  auto b = ViewCandidateFor(Query(1));  // same template, other literals
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->CanonicalKey(), b->CanonicalKey());
  // A view from a different template differs.
  for (size_t i = 2; i < W().size(); ++i) {
    if (W().query(i).template_hash == W().query(0).template_hash) continue;
    auto c = ViewCandidateFor(Query(i));
    if (c.has_value()) {
      EXPECT_NE(a->CanonicalKey(), c->CanonicalKey());
      break;
    }
  }
}

}  // namespace
}  // namespace isum::views
