// Compile-fail fixture for the thread-safety analysis gate. This file
// deliberately reads and writes ISUM_GUARDED_BY state without holding the
// guarding mutex; under `-DISUM_THREAD_SAFETY=ON` (clang,
// -Wthread-safety promoted to an error) it MUST NOT compile. The
// thread_safety_fail_compiles ctest entry builds it and asserts failure
// (WILL_FAIL), proving the analysis is actually armed — a toolchain or
// flag regression that silently disabled the analysis would flip this
// test red.
//
// Never add this file to a normal target: under gcc the annotations are
// no-ops and it would compile (and race) happily.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace isum {

class UnsafeCounter {
 public:
  // Write without the lock: ISUM_GUARDED_BY violation #1.
  void Increment() { ++count_; }

  // Read without the lock: ISUM_GUARDED_BY violation #2.
  int Get() const { return count_; }

  // Claims to require the lock but never takes it, then calls itself
  // recursively satisfied — the REQUIRES contract is unmet at this call
  // site: violation #3.
  int GetLocked() const ISUM_REQUIRES(mu_) { return count_; }
  int GetWithoutHolding() const { return GetLocked(); }

 private:
  mutable Mutex mu_;
  int count_ ISUM_GUARDED_BY(mu_) = 0;
};

int ThreadSafetyFailDriver() {
  UnsafeCounter c;
  c.Increment();
  return c.Get() + c.GetWithoutHolding();
}

}  // namespace isum

int main() { return isum::ThreadSafetyFailDriver(); }
