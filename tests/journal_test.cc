// Tests for src/obs/journal.h: the isum-events-v1 decision-provenance
// stream. Suite names start with `Journal` so the TSan CI job picks the
// concurrency tests up via its --gtest_filter.
//
// The journal is a process-wide singleton, so every test opens it against a
// fresh temp file and closes it (restoring the real clock) before leaving.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/jsonl.h"
#include "core/isum.h"
#include "obs/journal.h"
#include "workload/workload_factory.h"

namespace isum::obs {
namespace {

/// Deterministic journal clock: advances 1ms per reading.
std::atomic<uint64_t> g_fake_nanos{0};
uint64_t FakeClock() {
  return g_fake_nanos.fetch_add(1'000'000, std::memory_order_relaxed) +
         1'000'000;
}
/// Settable journal clock: returns whatever the test last stored.
std::atomic<uint64_t> g_held_nanos{0};
uint64_t HeldClock() { return g_held_nanos.load(std::memory_order_relaxed); }

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

class JournalTest : public testing::Test {
 protected:
  void TearDown() override {
    Journal::Global().Close();
    Journal::Global().SetClockForTest(nullptr);
  }
};

TEST_F(JournalTest, LifecycleIsWellFormed) {
  const std::string path = TempPath("journal_lifecycle.jsonl");
  ASSERT_TRUE(Journal::Global().Open(path, "journal_test"));
  EXPECT_TRUE(Journal::Global().enabled());

  Journal& j = Journal::Global();
  j.CompressBegin(100, 10, "summary-features", 1);
  j.SelectRound(0, 42, 0.5, 0.25, 0, 100);
  j.FeatureReset(7);
  const size_t order[] = {42};
  j.CompressEnd(1, SelectionOrderHash(order, 1), 0.5, "complete");
  EXPECT_EQ(j.events_written(), 5u);  // journal_begin + the four above
  j.Close();
  EXPECT_FALSE(j.enabled());

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 6u);
  const char* expected_events[] = {"journal_begin", "compress_begin",
                                   "select",        "feature_reset",
                                   "compress_end",  "journal_end"};
  for (size_t i = 0; i < lines.size(); ++i) {
    auto event = JsonExtractString(lines[i], "event");
    ASSERT_TRUE(event.ok()) << lines[i];
    EXPECT_EQ(event.value(), expected_events[i]);
    auto seq = JsonExtractNumber(lines[i], "seq");
    ASSERT_TRUE(seq.ok()) << lines[i];
    EXPECT_EQ(seq.value(), static_cast<double>(i)) << "seq must be dense";
    EXPECT_TRUE(JsonHasKey(lines[i], "t_us")) << lines[i];
  }
  EXPECT_EQ(JsonExtractString(lines[0], "schema").value(), "isum-events-v1");
  EXPECT_EQ(JsonExtractString(lines[0], "label").value(), "journal_test");
  EXPECT_EQ(JsonExtractNumber(lines[2], "query").value(), 42.0);
  EXPECT_EQ(JsonExtractNumber(lines[2], "gap").value(), 0.25);
  EXPECT_EQ(JsonExtractString(lines[4], "stop_reason").value(), "complete");
}

TEST_F(JournalTest, FakeClockTimestampsAreDeterministic) {
  g_fake_nanos.store(0, std::memory_order_relaxed);
  Journal::Global().SetClockForTest(&FakeClock);
  const std::string path = TempPath("journal_clock.jsonl");
  ASSERT_TRUE(Journal::Global().Open(path, "clock"));
  Journal::Global().FeatureReset(1);
  Journal::Global().FeatureReset(2);
  Journal::Global().Close();

  // One clock reading fixes the origin in Open(); each emitted line takes
  // exactly one more, so consecutive t_us differ by exactly 1000us.
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 4u);
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(JsonExtractNumber(lines[i], "t_us").value(),
              1000.0 * static_cast<double>(i + 1));
  }
}

TEST_F(JournalTest, SelectionOrderHashGoldens) {
  // FNV-1a over the selection order; these goldens pin the exact constants
  // (bench baselines and journal compress_end events both persist hashes,
  // so the function can never drift silently).
  EXPECT_EQ(SelectionOrderHash(nullptr, 0), 0x14650fb0739d0383ull);
  const size_t one[] = {7};
  EXPECT_EQ(SelectionOrderHash(one, 1), 0x44bd2cd473ccf94cull);
  const size_t many[] = {3, 1, 4, 1, 5};
  EXPECT_EQ(SelectionOrderHash(many, 5), 0x10f5bb4db77e297bull);
  // Order-sensitive: a permutation is a different selection.
  const size_t swapped[] = {1, 3, 4, 1, 5};
  EXPECT_NE(SelectionOrderHash(many, 5), SelectionOrderHash(swapped, 5));
}

TEST_F(JournalTest, OpenFailureLeavesJournalDisabled) {
  EXPECT_FALSE(Journal::Global().Open(
      testing::TempDir() + "/no_such_dir/journal.jsonl", "x"));
  EXPECT_FALSE(Journal::Global().enabled());
  Journal::Global().FeatureReset(1);  // must be a no-op, not a crash
}

TEST_F(JournalTest, BudgetTickIsRateLimited) {
  g_held_nanos.store(1'000'000'000, std::memory_order_relaxed);
  Journal::Global().SetClockForTest(&HeldClock);
  const std::string path = TempPath("journal_tick.jsonl");
  ASSERT_TRUE(Journal::Global().Open(path, "tick"));

  Journal::Global().BudgetTick(10.0);  // first tick always emits
  Journal::Global().BudgetTick(9.9);   // same instant: suppressed
  g_held_nanos.fetch_add(100'000'000, std::memory_order_relaxed);  // +100ms
  Journal::Global().BudgetTick(9.8);  // inside the 250ms window: suppressed
  g_held_nanos.fetch_add(200'000'000, std::memory_order_relaxed);  // +300ms
  Journal::Global().BudgetTick(9.7);  // window elapsed: emits
  Journal::Global().Close();

  std::vector<double> remaining;
  for (const std::string& line : ReadLines(path)) {
    if (JsonExtractString(line, "event").value() == "budget_tick") {
      remaining.push_back(JsonExtractNumber(line, "remaining_s").value());
    }
  }
  EXPECT_EQ(remaining, (std::vector<double>{10.0, 9.7}));
}

TEST_F(JournalTest, BudgetStopDeduplicatesConsecutiveReasons) {
  const std::string path = TempPath("journal_stop.jsonl");
  ASSERT_TRUE(Journal::Global().Open(path, "stop"));
  const char* deadline = StopReasonToString(StopReason::kDeadline);
  const char* cancelled = StopReasonToString(StopReason::kCancelled);
  Journal::Global().BudgetStop(deadline);
  Journal::Global().BudgetStop(deadline);  // repeat poll: suppressed
  Journal::Global().BudgetStop(cancelled);
  Journal::Global().Close();

  std::vector<std::string> reasons;
  for (const std::string& line : ReadLines(path)) {
    if (JsonExtractString(line, "event").value() == "budget_stop") {
      reasons.push_back(JsonExtractString(line, "reason").value());
    }
  }
  EXPECT_EQ(reasons, (std::vector<std::string>{"deadline", "cancelled"}));
}

TEST_F(JournalTest, AbnormalStopReasonFlushesEagerly) {
  const std::string path = TempPath("journal_flush.jsonl");
  ASSERT_TRUE(Journal::Global().Open(path, "flush"));
  Journal::Global().CompressBegin(10, 5, "summary-features", 1);
  Journal::Global().SelectRound(0, 3, 1.0, -1.0, 0, 10);
  const size_t order[] = {3};
  Journal::Global().CompressEnd(1, SelectionOrderHash(order, 1), 1.0,
                                "deadline");
  // No Close(), no Flush(): the abnormal stop_reason alone must have pushed
  // every buffered line to disk (a deadline-killed run leaves a complete
  // artifact even if the process dies before the journal is closed).
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(JsonExtractString(lines.back(), "event").value(), "compress_end");
  EXPECT_EQ(JsonExtractString(lines.back(), "stop_reason").value(),
            "deadline");
}

TEST_F(JournalTest, InjectedDeadlineRegressionFlushesSelection) {
  // End-to-end regression: a selection killed by an (already expired)
  // injected deadline must leave its compress block on disk *before* the
  // journal is closed — the eager flush on abnormal stop_reason is the only
  // thing that guarantees it.
  workload::GeneratorOptions gen;
  gen.instances_per_template = 1;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);

  const std::string path = TempPath("journal_deadline.jsonl");
  ASSERT_TRUE(Journal::Global().Open(path, "deadline_regression"));
  core::IsumOptions options;
  options.budget = TimeBudget::After(0.0);  // expires immediately
  core::Isum isum(env.workload.get(), options);
  const core::SelectionResult selection = isum.Select(5);
  EXPECT_EQ(selection.stop_reason, StopReason::kDeadline);

  bool found_abnormal_end = false;
  for (const std::string& line : ReadLines(path)) {
    if (JsonExtractString(line, "event").value() == "compress_end") {
      EXPECT_EQ(JsonExtractString(line, "stop_reason").value(), "deadline");
      found_abnormal_end = true;
    }
  }
  EXPECT_TRUE(found_abnormal_end)
      << "compress_end must reach disk without Close()";
}

TEST_F(JournalTest, ConcurrentEmittersKeepSeqDense) {
  const std::string path = TempPath("journal_concurrent.jsonl");
  ASSERT_TRUE(Journal::Global().Open(path, "concurrent"));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        Journal::Global().SelectRound(static_cast<uint64_t>(i),
                                      static_cast<uint64_t>(t), 1.0, 0.5, 0,
                                      10);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  Journal::Global().Close();

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u + kThreads * kPerThread);
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(JsonExtractNumber(lines[i], "seq").value(),
              static_cast<double>(i));
  }
}

}  // namespace
}  // namespace isum::obs
