// End-to-end smoke test: generate a tiny TPC-H workload, compress with ISUM,
// tune, and check the pipeline produces a sane improvement.

#include <gtest/gtest.h>

#include "eval/pipeline.h"
#include "workload/workload_factory.h"

namespace isum {
namespace {

TEST(Smoke, TpchCompressTuneEvaluate) {
  workload::GeneratorOptions gen;
  gen.instances_per_template = 3;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  ASSERT_EQ(env.workload->size(), 22u * 3u);
  ASSERT_EQ(env.workload->NumTemplates(), 22u);
  EXPECT_GT(env.workload->TotalCost(), 0.0);

  core::Isum isum(env.workload.get());
  workload::CompressedWorkload compressed = isum.Compress(8);
  ASSERT_EQ(compressed.size(), 8u);

  advisor::TuningOptions tuning;
  tuning.max_indexes = 10;
  eval::EvaluationResult result = eval::RunPipeline(
      *env.workload, compressed, eval::MakeDtaTuner(*env.workload, tuning),
      "ISUM");
  EXPECT_GT(result.tuning.configuration.size(), 0u);
  EXPECT_GT(result.improvement_percent, 0.0);
  EXPECT_LE(result.improvement_percent, 100.0);
}

}  // namespace
}  // namespace isum
