// Unit tests for src/advisor: candidate generation (Table 1 rules),
// DTA-style enumeration constraints, and the DEXTER-style advisor.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <optional>

#include "advisor/advisor.h"
#include "advisor/dexter_advisor.h"
#include "workload/workload_factory.h"

namespace isum::advisor {
namespace {

class AdvisorTest : public ::testing::Test {
 protected:
  AdvisorTest() {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 1;
    env_ = workload::MakeTpch(gen);
  }

  const sql::BoundQuery& Query(size_t i) { return env_->workload->query(i).bound; }

  std::vector<WeightedQuery> AllQueries() {
    std::vector<WeightedQuery> out;
    for (size_t i = 0; i < env_->workload->size(); ++i) {
      out.push_back({&Query(i), 1.0});
    }
    return out;
  }

  std::optional<workload::GeneratedWorkload> env_;
};

TEST_F(AdvisorTest, IndexableColumnsCoverAllRoles) {
  // TPC-H Q3-shaped query: filters, joins, group-by, order-by.
  bool found = false;
  for (size_t i = 0; i < env_->workload->size(); ++i) {
    const sql::BoundQuery& q = Query(i);
    if (!q.joins.empty() && !q.group_by_columns.empty() &&
        !q.order_by_columns.empty() && !q.filters.empty()) {
      const IndexableColumns cols = ExtractIndexableColumns(q);
      EXPECT_FALSE(cols.filter_columns.empty());
      EXPECT_FALSE(cols.join_columns.empty());
      EXPECT_FALSE(cols.group_by_columns.empty());
      EXPECT_FALSE(cols.order_by_columns.empty());
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AdvisorTest, CandidatesRespectKeyColumnCap) {
  CandidateGenOptions options;
  options.max_key_columns = 2;
  for (size_t i = 0; i < 5; ++i) {
    for (const engine::Index& index :
         GenerateCandidates(Query(i), *env_->stats, options)) {
      EXPECT_LE(index.key_columns().size(), 2u);
    }
  }
}

TEST_F(AdvisorTest, CandidatesAreDeduplicated) {
  for (size_t i = 0; i < 5; ++i) {
    auto candidates = GenerateCandidates(Query(i), *env_->stats);
    for (size_t a = 0; a < candidates.size(); ++a) {
      for (size_t b = a + 1; b < candidates.size(); ++b) {
        EXPECT_FALSE(candidates[a] == candidates[b]);
      }
    }
  }
}

TEST_F(AdvisorTest, CandidatesOnlyOnReferencedTables) {
  for (size_t i = 0; i < env_->workload->size(); ++i) {
    const sql::BoundQuery& q = Query(i);
    for (const engine::Index& index : GenerateCandidates(q, *env_->stats)) {
      EXPECT_TRUE(q.ReferencesTable(index.table()));
    }
  }
}

TEST_F(AdvisorTest, CoveringVariantsToggle) {
  CandidateGenOptions with;
  CandidateGenOptions without;
  without.covering_variants = false;
  const auto a = GenerateCandidates(Query(2), *env_->stats, with);
  const auto b = GenerateCandidates(Query(2), *env_->stats, without);
  EXPECT_GT(a.size(), b.size());
  for (const engine::Index& index : b) {
    EXPECT_TRUE(index.include_columns().empty());
  }
}

TEST_F(AdvisorTest, SelectionColumnsLeadJoinInR3) {
  // For a query with both selections and joins, some candidate must start
  // with a selection column and contain a join column (rule R3), and some
  // must lead with the join column (R4).
  const sql::BoundQuery& q = Query(2);  // TPC-H Q3 has both
  const IndexableColumns cols = ExtractIndexableColumns(q);
  ASSERT_FALSE(cols.join_columns.empty());
  auto candidates = GenerateCandidates(q, *env_->stats);
  bool r3 = false, r4 = false;
  for (const engine::Index& index : candidates) {
    if (index.key_columns().size() < 2) continue;
    const bool lead_join =
        std::find(cols.join_columns.begin(), cols.join_columns.end(),
                  index.key_columns()[0]) != cols.join_columns.end();
    const bool lead_sel =
        std::find(cols.filter_columns.begin(), cols.filter_columns.end(),
                  index.key_columns()[0]) != cols.filter_columns.end();
    bool has_join_later = false;
    for (size_t j = 1; j < index.key_columns().size(); ++j) {
      if (std::find(cols.join_columns.begin(), cols.join_columns.end(),
                    index.key_columns()[j]) != cols.join_columns.end()) {
        has_join_later = true;
      }
    }
    if (lead_sel && has_join_later) r3 = true;
    if (lead_join) r4 = true;
  }
  EXPECT_TRUE(r3);
  EXPECT_TRUE(r4);
}

TEST_F(AdvisorTest, TuneRespectsMaxIndexes) {
  DtaStyleAdvisor advisor(env_->cost_model.get());
  TuningOptions options;
  options.max_indexes = 3;
  TuningResult result = advisor.Tune(AllQueries(), options);
  EXPECT_LE(result.configuration.size(), 3u);
  EXPECT_GT(result.optimizer_calls, 0u);
  EXPECT_GT(result.configurations_explored, 0u);
}

TEST_F(AdvisorTest, TuneRespectsStorageBudget) {
  DtaStyleAdvisor advisor(env_->cost_model.get());
  TuningOptions options;
  options.max_indexes = 50;
  options.storage_budget_bytes = env_->catalog->total_data_bytes() / 10;
  TuningResult result = advisor.Tune(AllQueries(), options);
  EXPECT_LE(result.configuration.TotalSizeBytes(*env_->catalog),
            options.storage_budget_bytes);
}

TEST_F(AdvisorTest, TuningImprovesWeightedCost) {
  DtaStyleAdvisor advisor(env_->cost_model.get());
  TuningOptions options;
  options.max_indexes = 8;
  TuningResult result = advisor.Tune(AllQueries(), options);
  EXPECT_LT(result.final_cost, result.initial_cost);
}

TEST_F(AdvisorTest, EmptyWorkloadYieldsEmptyConfig) {
  DtaStyleAdvisor advisor(env_->cost_model.get());
  TuningResult result = advisor.Tune({});
  EXPECT_TRUE(result.configuration.empty());
}

TEST_F(AdvisorTest, WeightsChangeRecommendation) {
  // Weight one query overwhelmingly: its best index must appear.
  DtaStyleAdvisor advisor(env_->cost_model.get());
  TuningOptions options;
  options.max_indexes = 1;

  std::vector<WeightedQuery> skew_a = {{&Query(0), 1000.0}, {&Query(5), 0.001}};
  std::vector<WeightedQuery> skew_b = {{&Query(0), 0.001}, {&Query(5), 1000.0}};
  TuningResult ra = advisor.Tune(skew_a, options);
  TuningResult rb = advisor.Tune(skew_b, options);
  ASSERT_EQ(ra.configuration.size(), 1u);
  ASSERT_EQ(rb.configuration.size(), 1u);
  // Q1 (lineitem-only) and Q6 (lineitem) may overlap; use a weaker check:
  // the recommended index must benefit the heavy query.
  engine::WhatIfOptimizer what_if(env_->cost_model.get());
  EXPECT_LT(what_if.Cost(Query(0), ra.configuration),
            what_if.Cost(Query(0), engine::Configuration()));
}

TEST_F(AdvisorTest, GreedyMarginalImprovementsNonIncreasingCost) {
  // The internal weighted cost after tuning never exceeds the initial one,
  // and a larger index budget never yields a worse final cost.
  DtaStyleAdvisor advisor(env_->cost_model.get());
  double prev_final = std::numeric_limits<double>::infinity();
  for (int m : {1, 2, 4, 8}) {
    TuningOptions options;
    options.max_indexes = m;
    TuningResult result = advisor.Tune(AllQueries(), options);
    EXPECT_LE(result.final_cost, result.initial_cost);
    EXPECT_LE(result.final_cost, prev_final + 1e-6);
    prev_final = result.final_cost;
  }
}

TEST_F(AdvisorTest, DexterRespectsMinImprovement) {
  DexterStyleAdvisor advisor(env_->cost_model.get());
  DexterOptions strict;
  strict.min_improvement = 0.99;  // nothing clears a 99% bar per index
  TuningResult result = advisor.Tune(AllQueries(), strict);
  EXPECT_EQ(result.configuration.size(), 0u);

  DexterOptions lax;
  lax.min_improvement = 0.05;
  TuningResult r2 = advisor.Tune(AllQueries(), lax);
  EXPECT_GT(r2.configuration.size(), 0u);
}

TEST_F(AdvisorTest, DexterSimplerThanDta) {
  // DEXTER candidates have at most 2 key columns and no includes.
  DexterStyleAdvisor advisor(env_->cost_model.get());
  TuningResult result = advisor.Tune(AllQueries(), DexterOptions{});
  for (const engine::Index& index : result.configuration.indexes()) {
    EXPECT_LE(index.key_columns().size(), 2u);
    EXPECT_TRUE(index.include_columns().empty());
  }
}

TEST_F(AdvisorTest, DexterMaxIndexesTruncates) {
  DexterStyleAdvisor advisor(env_->cost_model.get());
  DexterOptions options;
  options.max_indexes = 2;
  TuningResult result = advisor.Tune(AllQueries(), options);
  EXPECT_LE(result.configuration.size(), 2u);
}

}  // namespace
}  // namespace isum::advisor
