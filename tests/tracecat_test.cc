// Tests for tools/tracecat: parsing the exporter's Chrome-trace and
// metrics-JSONL output (round-trip through src/obs/export.h), phase
// aggregation, top-k selection, and the rendered report.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tools/tracecat/tracecat.h"

namespace isum::tracecat {
namespace {

obs::TraceDump SampleDump() {
  obs::TraceDump dump;
  dump.thread_names = {"main", "pool-worker-0"};
  // name, tid, depth, start_nanos, dur_nanos
  dump.spans.push_back(
      obs::SpanRecord{"compress/total", 0, 0, 1000, 9000000});
  dump.spans.push_back(
      obs::SpanRecord{"compress/greedy-pick", 0, 1, 2000, 8000000});
  dump.spans.push_back(
      obs::SpanRecord{"whatif/optimize", 1, 0, 3000, 500000});
  dump.spans.push_back(
      obs::SpanRecord{"whatif/optimize", 1, 0, 600000, 700000});
  return dump;
}

TEST(TracecatParse, RoundTripsExporterOutput) {
  const std::string json = obs::ChromeTraceJson(SampleDump());
  const auto events = ParseChromeTrace(json);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  // 2 thread_name metadata events + 4 spans.
  ASSERT_EQ(events.value().size(), 6u);
  EXPECT_EQ(events.value()[0].phase, "M");
  EXPECT_EQ(events.value()[0].thread_name, "main");
  EXPECT_EQ(events.value()[1].thread_name, "pool-worker-0");
  const TraceEvent& span = events.value()[2];
  EXPECT_EQ(span.phase, "X");
  EXPECT_EQ(span.name, "compress/total");
  EXPECT_EQ(span.tid, 0u);
  EXPECT_DOUBLE_EQ(span.ts_us, 1.0);
  EXPECT_DOUBLE_EQ(span.dur_us, 9000.0);
}

TEST(TracecatParse, RejectsMalformedInput) {
  EXPECT_FALSE(ParseChromeTrace("not json\n").ok());
  EXPECT_FALSE(ParseChromeTrace("[\n{\"ph\":\"Q\",\"tid\":0}\n]\n").ok());
}

TEST(TracecatAggregate, SumsPerPhaseSortedByTotal) {
  const std::string json = obs::ChromeTraceJson(SampleDump());
  const auto events = ParseChromeTrace(json);
  ASSERT_TRUE(events.ok());
  const std::vector<PhaseStat> phases = AggregatePhases(events.value());
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].name, "compress/total");
  EXPECT_EQ(phases[0].count, 1u);
  EXPECT_DOUBLE_EQ(phases[0].total_us, 9000.0);
  EXPECT_EQ(phases[1].name, "compress/greedy-pick");
  EXPECT_EQ(phases[2].name, "whatif/optimize");
  EXPECT_EQ(phases[2].count, 2u);
  EXPECT_DOUBLE_EQ(phases[2].total_us, 1200.0);
  EXPECT_DOUBLE_EQ(phases[2].max_us, 700.0);
}

TEST(TracecatTopSlowest, OrdersByDurationAndTruncates) {
  const std::string json = obs::ChromeTraceJson(SampleDump());
  const auto events = ParseChromeTrace(json);
  ASSERT_TRUE(events.ok());
  const std::vector<TraceEvent> top = TopSlowest(events.value(), 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].name, "compress/total");
  EXPECT_EQ(top[1].name, "compress/greedy-pick");
}

TEST(TracecatMetrics, ParsesExporterJsonl) {
  obs::MetricsRegistry registry;
  registry.GetCounter("whatif.optimizer_calls")->Add(30);
  registry.GetCounter("whatif.cache_hits")->Add(70);
  obs::Histogram* lat = registry.GetHistogram("whatif.optimize_nanos");
  for (int i = 0; i < 30; ++i) lat->Observe(1000000);
  const std::string jsonl = obs::MetricsJsonl(registry.Snapshot());
  const auto parsed = ParseMetricsJsonl(jsonl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 3u);
  bool saw_calls = false, saw_hist = false;
  for (const MetricLine& m : parsed.value()) {
    if (m.type == "counter" && m.name == "whatif.optimizer_calls") {
      saw_calls = true;
      EXPECT_DOUBLE_EQ(m.value, 30.0);
    }
    if (m.type == "histogram" && m.name == "whatif.optimize_nanos") {
      saw_hist = true;
      EXPECT_EQ(m.count, 30u);
      EXPECT_GT(m.p50, 0.0);
    }
  }
  EXPECT_TRUE(saw_calls);
  EXPECT_TRUE(saw_hist);
}

TEST(TracecatReport, RendersPhaseAndWhatIfTables) {
  const std::string json = obs::ChromeTraceJson(SampleDump());
  const auto events = ParseChromeTrace(json);
  ASSERT_TRUE(events.ok());

  obs::MetricsRegistry registry;
  registry.GetCounter("whatif.optimizer_calls")->Add(25);
  registry.GetCounter("whatif.cache_hits")->Add(75);
  const auto metrics =
      ParseMetricsJsonl(obs::MetricsJsonl(registry.Snapshot()));
  ASSERT_TRUE(metrics.ok());

  const std::string report = Report(events.value(), metrics.value(), 3);
  EXPECT_NE(report.find("== per-phase totals =="), std::string::npos);
  EXPECT_NE(report.find("compress/greedy-pick"), std::string::npos);
  EXPECT_NE(report.find("== top 3 slowest spans =="), std::string::npos);
  EXPECT_NE(report.find("== what-if optimizer =="), std::string::npos);
  EXPECT_NE(report.find("optimizer calls: 25"), std::string::npos);
  EXPECT_NE(report.find("hit rate:        75.0%"), std::string::npos);
}

TEST(TracecatReport, EmptyTraceStillRenders) {
  const std::string report = Report({}, {}, 10);
  EXPECT_NE(report.find("(no spans)"), std::string::npos);
}

TEST(TracecatReport, RendersRobustnessCountersWhenPresent) {
  obs::MetricsRegistry registry;
  registry.GetCounter("fault.injected")->Add(12);
  registry.GetCounter("retry.attempts")->Add(34);
  registry.GetCounter("deadline.exceeded")->Add(5);
  const auto metrics =
      ParseMetricsJsonl(obs::MetricsJsonl(registry.Snapshot()));
  ASSERT_TRUE(metrics.ok());
  const std::string report = Report({}, metrics.value(), 10);
  EXPECT_NE(report.find("== robustness =="), std::string::npos);
  EXPECT_NE(report.find("faults injected:   12"), std::string::npos);
  EXPECT_NE(report.find("retry attempts:    34"), std::string::npos);
  EXPECT_NE(report.find("deadline exceeded: 5"), std::string::npos);
}

/// A hand-written isum-bench-v1 record matching bench_util.h's emitter
/// layout exactly (one key per line, sections as line-disciplined arrays).
std::string SampleBenchRecord(const std::string& label, double wall,
                              double greedy_us, double feat_us) {
  std::string out;
  out += "{\n";
  out += "\"schema\": \"isum-bench-v1\",\n";
  out += "\"label\": \"" + label + "\",\n";
  out += "\"bench\": \"bench_fig2_scalability\",\n";
  out += "\"git_rev\": \"abc1234\",\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "\"wall_seconds\": %.6f,\n", wall);
  out += buf;
  out += "\"peak_rss_bytes\": 1048576,\n";
  out += "\"phases\": [\n";
  std::snprintf(buf, sizeof(buf),
                "{\"name\": \"compress/greedy-pick\", \"count\": 4, "
                "\"total_us\": %.3f, \"max_us\": %.3f},\n",
                greedy_us, greedy_us / 2);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "{\"name\": \"compress/feature-extraction\", \"count\": 4, "
                "\"total_us\": %.3f, \"max_us\": %.3f}\n",
                feat_us, feat_us / 2);
  out += buf;
  out += "],\n";
  out += "\"counters\": [\n";
  out += "{\"name\": \"whatif.optimizer_calls\", \"value\": 42}\n";
  out += "],\n";
  out += "\"runs\": [\n";
  out += "{\"name\": \"compress/n=1000\", \"seconds\": 1.25, "
         "\"selection_hash\": \"deadbeef\"}\n";
  out += "]\n";
  out += "}\n";
  return out;
}

TEST(TracecatBench, ParsesSingleRecord) {
  const auto parsed =
      ParseBenchJson(SampleBenchRecord("pre", 4.5, 9000.0, 1200.0));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 1u);
  const BenchRecord& r = parsed.value()[0];
  EXPECT_EQ(r.label, "pre");
  EXPECT_EQ(r.bench, "bench_fig2_scalability");
  EXPECT_EQ(r.git_rev, "abc1234");
  EXPECT_DOUBLE_EQ(r.wall_seconds, 4.5);
  EXPECT_EQ(r.peak_rss_bytes, 1048576u);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_EQ(r.phases[0].name, "compress/greedy-pick");
  EXPECT_EQ(r.phases[0].count, 4u);
  EXPECT_DOUBLE_EQ(r.phases[0].total_us, 9000.0);
  ASSERT_EQ(r.counters.size(), 1u);
  EXPECT_EQ(r.counters[0].first, "whatif.optimizer_calls");
  EXPECT_DOUBLE_EQ(r.counters[0].second, 42.0);
  ASSERT_EQ(r.run_names.size(), 1u);
  EXPECT_EQ(r.run_names[0], "compress/n=1000");
}

TEST(TracecatBench, ParsesTrajectoryArray) {
  const std::string trajectory =
      "[\n" + SampleBenchRecord("pre", 4.5, 9000.0, 1200.0) + ",\n" +
      SampleBenchRecord("post", 0.9, 800.0, 1200.0) + "]\n";
  const auto parsed = ParseBenchJson(trajectory);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0].label, "pre");
  EXPECT_EQ(parsed.value()[1].label, "post");
}

TEST(TracecatBench, RejectsSchemaInvalidInput) {
  // Wrong schema tag.
  std::string wrong_tag = SampleBenchRecord("x", 1.0, 1.0, 1.0);
  wrong_tag.replace(wrong_tag.find("isum-bench-v1"), 13, "isum-bench-v9");
  EXPECT_FALSE(ParseBenchJson(wrong_tag).ok());
  // Missing schema line entirely.
  std::string no_tag = SampleBenchRecord("x", 1.0, 1.0, 1.0);
  const size_t tag_line = no_tag.find("\"schema\"");
  no_tag.erase(tag_line, no_tag.find('\n', tag_line) - tag_line + 1);
  EXPECT_FALSE(ParseBenchJson(no_tag).ok());
  // Unterminated record and non-record garbage.
  EXPECT_FALSE(ParseBenchJson("{\n\"schema\": \"isum-bench-v1\",\n").ok());
  EXPECT_FALSE(ParseBenchJson("not a bench file\n").ok());
  EXPECT_FALSE(ParseBenchJson("[\n]\n").ok());
}

TEST(TracecatBench, DeltaReportsPerPhaseAndWallChanges) {
  const auto from = ParseBenchJson(SampleBenchRecord("pre", 4.0, 9000.0, 1200.0));
  const auto to = ParseBenchJson(SampleBenchRecord("post", 1.0, 900.0, 1200.0));
  ASSERT_TRUE(from.ok() && to.ok());
  const std::string delta = BenchDelta(from.value()[0], to.value()[0]);
  EXPECT_NE(delta.find("pre (abc1234) -> post (abc1234)"), std::string::npos);
  EXPECT_NE(delta.find("compress/greedy-pick"), std::string::npos);
  EXPECT_NE(delta.find("-90.0%"), std::string::npos);
  EXPECT_NE(delta.find("+0.0%"), std::string::npos);
  EXPECT_NE(delta.find("wall: 4.00s -> 1.00s (-75.0%)"), std::string::npos);
}

TEST(TracecatBench, DeltaMarksPhasesMissingOnOneSide) {
  auto from = ParseBenchJson(SampleBenchRecord("pre", 4.0, 9000.0, 1200.0));
  auto to = ParseBenchJson(SampleBenchRecord("post", 1.0, 900.0, 1200.0));
  ASSERT_TRUE(from.ok() && to.ok());
  BenchRecord a = from.value()[0];
  BenchRecord b = to.value()[0];
  a.phases.push_back(PhaseStat{"compress/gone", 1, 50.0, 50.0});
  b.phases.push_back(PhaseStat{"compress/new", 1, 75.0, 75.0});
  const std::string delta = BenchDelta(a, b);
  EXPECT_NE(delta.find("compress/gone"), std::string::npos);
  EXPECT_NE(delta.find("compress/new"), std::string::npos);
}

/// A hand-written isum-events-v1 journal with one clean compression block
/// whose selection hash is genuinely correct (computed via the shared
/// obs::SelectionOrderHash definition).
std::string SampleJournal() {
  const size_t order[] = {7, 3};
  char hash[32];
  std::snprintf(hash, sizeof(hash), "%016llx",
                static_cast<unsigned long long>(
                    obs::SelectionOrderHash(order, 2)));
  std::string out;
  out +=
      "{\"event\":\"journal_begin\",\"seq\":0,\"t_us\":0.000,"
      "\"schema\":\"isum-events-v1\",\"label\":\"unit\"}\n";
  out +=
      "{\"event\":\"compress_begin\",\"seq\":1,\"t_us\":1.000,\"n\":10,"
      "\"k\":2,\"algorithm\":\"summary-features\",\"threads\":1}\n";
  out +=
      "{\"event\":\"select\",\"seq\":2,\"t_us\":2.000,\"round\":0,"
      "\"query\":7,\"benefit\":0.5,\"gap\":0.1,\"shard\":0,\"eligible\":10}\n";
  out +=
      "{\"event\":\"select\",\"seq\":3,\"t_us\":3.000,\"round\":1,"
      "\"query\":3,\"benefit\":0.25,\"gap\":0.005,\"shard\":0,"
      "\"eligible\":9}\n";
  out += std::string("{\"event\":\"compress_end\",\"seq\":4,\"t_us\":4.000,") +
         "\"selected\":2,\"selection_hash\":\"" + hash +
         "\",\"benefit_sum\":0.75,\"stop_reason\":\"complete\"}\n";
  out +=
      "{\"event\":\"enum_round\",\"seq\":5,\"t_us\":5.000,\"round\":0,"
      "\"candidates\":6,\"best_index\":2,\"improvement\":12.5,"
      "\"cache_hits\":4,\"optimizer_calls\":8}\n";
  out +=
      "{\"event\":\"enum_end\",\"seq\":6,\"t_us\":6.000,\"indexes\":1,"
      "\"initial_cost\":100,\"final_cost\":87.5,"
      "\"stop_reason\":\"complete\"}\n";
  out +=
      "{\"event\":\"retry\",\"seq\":7,\"t_us\":7.000,\"site\":"
      "\"whatif.cost\",\"attempt\":1,\"backoff_us\":250.000}\n";
  out +=
      "{\"event\":\"fault\",\"seq\":8,\"t_us\":8.000,\"site\":"
      "\"whatif.cost\",\"code\":\"unavailable\"}\n";
  out +=
      "{\"event\":\"attribution\",\"seq\":9,\"t_us\":9.000,\"query\":7,"
      "\"weight\":2.5,\"estimated\":0.5,\"realized\":40}\n";
  out +=
      "{\"event\":\"attribution\",\"seq\":10,\"t_us\":10.000,\"query\":3,"
      "\"weight\":1.5,\"estimated\":0.25,\"realized\":60}\n";
  out +=
      "{\"event\":\"pipeline_end\",\"seq\":11,\"t_us\":11.000,"
      "\"algorithm\":\"isum\",\"k\":2,\"improvement_percent\":12.5,"
      "\"stop_reason\":\"complete\"}\n";
  out += "{\"event\":\"journal_end\",\"seq\":12,\"t_us\":12.000}\n";
  return out;
}

TEST(TracecatJournal, ParsesAndChecksWellFormedJournal) {
  const auto events = ParseJournal(SampleJournal());
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events.value().size(), 13u);
  EXPECT_EQ(events.value()[2].event, "select");
  EXPECT_EQ(events.value()[2].seq, 2u);
  EXPECT_DOUBLE_EQ(events.value()[2].Number("benefit").value(), 0.5);
  EXPECT_EQ(events.value()[0].String("label").value(), "unit");

  const auto checked = CheckJournal(events.value());
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
  EXPECT_EQ(checked.value(), 13u);
}

TEST(TracecatJournal, ExplainReconstructsTheRun) {
  const auto events = ParseJournal(SampleJournal());
  ASSERT_TRUE(events.ok());
  const auto report = ExplainJournal(events.value(), 5);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string& text = report.value();
  EXPECT_NE(text.find("== journal: unit (13 events) =="), std::string::npos);
  EXPECT_NE(text.find("summary-features, n=10 -> k=2"), std::string::npos);
  EXPECT_NE(text.find("selection order: 7 3"), std::string::npos);
  EXPECT_NE(text.find("(recomputed: match)"), std::string::npos);
  // Round 1 (margin 0.005) is more contested than round 0 (margin 0.1).
  const size_t round1 = text.find(" 0.005 ");
  const size_t round0 = text.find(" 0.1 ");
  EXPECT_NE(round1, std::string::npos) << text;
  EXPECT_NE(round0, std::string::npos) << text;
  EXPECT_LT(round1, round0) << "contested rounds must sort by margin";
  EXPECT_NE(text.find("== enumeration: 1 round(s) =="), std::string::npos);
  EXPECT_NE(text.find("cost 100 -> 87.5 (12.5%)"), std::string::npos);
  EXPECT_NE(text.find("== benefit attribution (2 selected queries) =="),
            std::string::npos);
  // Estimated ranks 7 above 3; realized ranks 3 above 7: rank error 1 each.
  EXPECT_NE(text.find("mean rank error: 1.00 over 2 queries"),
            std::string::npos);
  EXPECT_NE(text.find("retry whatif.cost attempt 1"), std::string::npos);
  EXPECT_NE(text.find("FAULT whatif.cost surfaced unavailable"),
            std::string::npos);
  EXPECT_NE(text.find("== pipeline: isum k=2 improvement 12.50% (complete)"),
            std::string::npos);
}

TEST(TracecatJournal, CheckRejectsHashMismatch) {
  std::string journal = SampleJournal();
  // Corrupt one selected query id: the recorded hash no longer matches the
  // replayed selection order.
  const size_t at = journal.find("\"query\":3");
  ASSERT_NE(at, std::string::npos);
  journal.replace(at, 9, "\"query\":4");
  const auto events = ParseJournal(journal);
  ASSERT_TRUE(events.ok());
  const auto checked = CheckJournal(events.value());
  ASSERT_FALSE(checked.ok());
  EXPECT_NE(checked.status().ToString().find("selection hash mismatch"),
            std::string::npos);
  // Explain still renders, and says so.
  const auto report = ExplainJournal(events.value(), 5);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report.value().find("selection hash mismatch"),
            std::string::npos);
}

TEST(TracecatJournal, CheckRejectsStructuralDamage) {
  // Truncation: drop the tail so seq keeps its density but the compression
  // block never ends.
  const std::string whole = SampleJournal();
  const std::string headless =
      whole.substr(whole.find("{\"event\":\"compress_begin\""));
  EXPECT_FALSE(CheckJournal(ParseJournal(headless).value()).ok());

  // A seq gap (line removed mid-file) must be called out.
  std::string gapped = whole;
  const size_t select_at = gapped.find("{\"event\":\"select\",\"seq\":2");
  gapped.erase(select_at, gapped.find('\n', select_at) - select_at + 1);
  const auto gap_check = CheckJournal(ParseJournal(gapped).value());
  ASSERT_FALSE(gap_check.ok());
  EXPECT_NE(gap_check.status().ToString().find("non-dense seq"),
            std::string::npos);

  // Unknown event types are schema violations, not silently skipped.
  std::string unknown = whole;
  const size_t retry_at = unknown.find("\"retry\"");
  unknown.replace(retry_at, 7, "\"rerun\"");
  EXPECT_FALSE(CheckJournal(ParseJournal(unknown).value()).ok());

  // Missing required field.
  std::string missing = whole;
  const size_t gap_at = missing.find(",\"gap\":0.1");
  missing.erase(gap_at, 10);
  const auto missing_check = CheckJournal(ParseJournal(missing).value());
  ASSERT_FALSE(missing_check.ok());
  EXPECT_NE(missing_check.status().ToString().find("missing field"),
            std::string::npos);

  EXPECT_FALSE(ParseJournal("").ok());
  EXPECT_FALSE(ParseJournal("not a journal\n").ok());
}

TEST(TracecatWatch, ParsesPrometheusTextAndRendersFrame) {
  obs::MetricsRegistry registry;
  registry.GetCounter("compress.runs")->Add(2);
  registry.GetCounter("compress.input_queries")->Add(20000);
  registry.GetCounter("compress.selected_queries")->Add(100);
  registry.GetCounter("whatif.optimizer_calls")->Add(25);
  registry.GetCounter("whatif.cache_hits")->Add(75);
  registry.GetCounter("retry.attempts")->Add(3);
  registry.GetGauge("budget.remaining_seconds")->Set(42.5);
  obs::Histogram* lat = registry.GetHistogram("whatif.optimize_nanos");
  for (int i = 0; i < 10; ++i) lat->Observe(2'000'000);

  const auto samples =
      ParsePrometheusText(obs::PrometheusText(registry.Snapshot()));
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();

  const std::string frame = WatchFrame(samples.value());
  EXPECT_NE(frame.find("budget remaining: 42.5s"), std::string::npos);
  EXPECT_NE(frame.find("compression: 2 run(s), 20000 -> 100 queries"),
            std::string::npos);
  EXPECT_NE(frame.find("(75.0% hit rate)"), std::string::npos);
  EXPECT_NE(frame.find("optimize latency: p50"), std::string::npos);
  EXPECT_NE(frame.find("robustness: 3 retry(ies)"), std::string::npos);
}

TEST(TracecatWatch, RejectsMalformedExposition) {
  EXPECT_FALSE(ParsePrometheusText("isum_thing\n").ok());
  EXPECT_FALSE(ParsePrometheusText("isum_thing notanumber\n").ok());
  EXPECT_FALSE(
      ParsePrometheusText("isum_thing{quantile=\"0.5\" 1.0\n").ok());
  // Comments and blank lines are fine; empty input parses to no samples.
  const auto empty = ParsePrometheusText("# TYPE x counter\n\n");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

// ---- bench RSS gate ----

TEST(TracecatBenchRss, PassesWithinToleranceAndOnShrink) {
  auto record = [](uint64_t rss) {
    BenchRecord r;
    r.git_rev = "abc1234";
    r.peak_rss_bytes = rss;
    return r;
  };
  // +5% growth under the +10% default.
  EXPECT_TRUE(
      CheckBenchRss({record(100 << 20), record(105 << 20)}, 10.0).ok());
  // Shrinking is never a regression, whatever the tolerance.
  EXPECT_TRUE(CheckBenchRss({record(100 << 20), record(50 << 20)}, 0.0).ok());
  // Single record or unsupported platform (rss 0): nothing to compare.
  EXPECT_TRUE(CheckBenchRss({record(100 << 20)}, 10.0).ok());
  EXPECT_TRUE(CheckBenchRss({record(0), record(100 << 20)}, 10.0).ok());
}

TEST(TracecatBenchRss, FailsPastToleranceFirstToLast) {
  auto record = [](uint64_t rss) {
    BenchRecord r;
    r.git_rev = "abc1234";
    r.peak_rss_bytes = rss;
    return r;
  };
  const Status grown =
      CheckBenchRss({record(100 << 20), record(125 << 20)}, 10.0);
  EXPECT_FALSE(grown.ok());
  EXPECT_NE(grown.ToString().find("+25.0%"), std::string::npos);
  // The gate compares first -> last; a middle spike that settles passes.
  EXPECT_TRUE(CheckBenchRss(
                  {record(100 << 20), record(150 << 20), record(105 << 20)},
                  10.0)
                  .ok());
  // A tighter tolerance catches the same delta.
  EXPECT_FALSE(
      CheckBenchRss({record(100 << 20), record(105 << 20)}, 2.0).ok());
}

// ---- sampling profiles ----

/// A hand-written isum-profile-v1 record matching obs::ProfileJson's
/// layout exactly (one key per line, sections as line-disciplined arrays).
std::string SampleProfileRecord() {
  std::string out;
  out += "{\n";
  out += "\"schema\": \"isum-profile-v1\",\n";
  out += "\"label\": \"run\",\n";
  out += "\"bench\": \"bench_fig2_scalability\",\n";
  out += "\"git_rev\": \"abc1234\",\n";
  out += "\"sample_hz\": 100,\n";
  out += "\"wall_seconds\": 2.500000,\n";
  out += "\"samples\": 200,\n";
  out += "\"dropped\": 3,\n";
  out += "\"attributed_samples\": 190,\n";
  out += "\"attributed_percent\": 95.00,\n";
  out += "\"alloc_enabled\": 1,\n";
  out += "\"alloc_total_bytes\": 4096,\n";
  out += "\"alloc_total_count\": 8,\n";
  out += "\"alloc_live_bytes\": -128,\n";
  out += "\"alloc_peak_bytes\": 2048,\n";
  out += "\"phases\": [\n";
  out += "{\"name\": \"compress/greedy-pick\", \"samples\": 150, "
         "\"percent\": 75.00},\n";
  out += "{\"name\": \"whatif/optimize\", \"samples\": 40, "
         "\"percent\": 20.00},\n";
  out += "{\"name\": \"(unattributed)\", \"samples\": 10, "
         "\"percent\": 5.00}\n";
  out += "],\n";
  out += "\"frames\": [\n";
  out += "{\"name\": \"isum::core::Score\", \"self\": 120, \"total\": 150},\n";
  out += "{\"name\": \"main\", \"self\": 10, \"total\": 200}\n";
  out += "],\n";
  out += "\"alloc_phases\": [\n";
  out += "{\"name\": \"compress/greedy-pick\", \"bytes\": 3072, "
         "\"count\": 6},\n";
  out += "{\"name\": \"(unattributed)\", \"bytes\": 1024, \"count\": 2}\n";
  out += "]\n";
  out += "}\n";
  return out;
}

TEST(TracecatProfile, ParsesFullRecord) {
  const auto parsed = ParseProfileJson(SampleProfileRecord());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ProfileRecord& r = parsed.value();
  EXPECT_EQ(r.label, "run");
  EXPECT_EQ(r.bench, "bench_fig2_scalability");
  EXPECT_EQ(r.git_rev, "abc1234");
  EXPECT_EQ(r.sample_hz, 100);
  EXPECT_DOUBLE_EQ(r.wall_seconds, 2.5);
  EXPECT_EQ(r.samples, 200u);
  EXPECT_EQ(r.dropped, 3u);
  EXPECT_EQ(r.attributed_samples, 190u);
  EXPECT_DOUBLE_EQ(r.attributed_percent, 95.0);
  EXPECT_TRUE(r.alloc_enabled);
  EXPECT_EQ(r.alloc_total_bytes, 4096u);
  EXPECT_EQ(r.alloc_live_bytes, -128);
  EXPECT_EQ(r.alloc_peak_bytes, 2048u);
  ASSERT_EQ(r.phases.size(), 3u);
  EXPECT_EQ(r.phases[0].name, "compress/greedy-pick");
  EXPECT_EQ(r.phases[0].samples, 150u);
  ASSERT_EQ(r.frames.size(), 2u);
  EXPECT_EQ(r.frames[0].name, "isum::core::Score");
  EXPECT_EQ(r.frames[0].self, 120u);
  EXPECT_EQ(r.frames[0].total, 150u);
  ASSERT_EQ(r.alloc_phases.size(), 2u);
  EXPECT_EQ(r.alloc_phases[0].bytes, 3072u);
}

TEST(TracecatProfile, RoundTripsEmitterOutput) {
  obs::ProfileDump dump;
  dump.sample_hz = 500;
  dump.samples = 4;
  dump.attributed = 3;
  dump.stacks.push_back(
      obs::ProfileStack{"compress/greedy-pick", {"main", "Greedy"}, 3});
  dump.stacks.push_back(obs::ProfileStack{"", {"main"}, 1});
  obs::ProfileMeta meta;
  meta.label = "smoke";
  meta.bench = "bench_x";
  meta.git_rev = "deadbee";
  meta.wall_seconds = 0.25;
  const auto parsed = ParseProfileJson(obs::ProfileJson(dump, meta));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().label, "smoke");
  EXPECT_EQ(parsed.value().sample_hz, 500);
  EXPECT_EQ(parsed.value().samples, 4u);
  ASSERT_EQ(parsed.value().phases.size(), 2u);
  EXPECT_EQ(parsed.value().phases[0].name, "compress/greedy-pick");
  const auto checked = CheckProfile(parsed.value(), 70.0);
  EXPECT_TRUE(checked.ok()) << checked.status().ToString();
}

TEST(TracecatProfile, RejectsSchemaInvalidInput) {
  std::string wrong_tag = SampleProfileRecord();
  wrong_tag.replace(wrong_tag.find("isum-profile-v1"), 15, "isum-profile-v9");
  EXPECT_FALSE(ParseProfileJson(wrong_tag).ok());
  std::string unknown_scalar = SampleProfileRecord();
  unknown_scalar.insert(unknown_scalar.find("\"phases\""),
                        "\"mystery\": 1,\n");
  EXPECT_FALSE(ParseProfileJson(unknown_scalar).ok());
  EXPECT_FALSE(
      ParseProfileJson("{\n\"schema\": \"isum-profile-v1\",\n").ok());
  EXPECT_FALSE(ParseProfileJson("not a profile\n").ok());
}

TEST(TracecatProfile, ReportRendersPhaseFrameAndAllocTables) {
  const auto parsed = ParseProfileJson(SampleProfileRecord());
  ASSERT_TRUE(parsed.ok());
  const std::string report = ProfileReport(parsed.value(), 5);
  EXPECT_NE(report.find("bench_fig2_scalability"), std::string::npos);
  EXPECT_NE(report.find("200 sample(s) at 100 Hz"), std::string::npos);
  EXPECT_NE(report.find("95.0% attributed"), std::string::npos);
  EXPECT_NE(report.find("== per-phase samples =="), std::string::npos);
  EXPECT_NE(report.find("compress/greedy-pick"), std::string::npos);
  EXPECT_NE(report.find("frames by self samples"), std::string::npos);
  EXPECT_NE(report.find("isum::core::Score"), std::string::npos);
  EXPECT_NE(report.find("== allocations =="), std::string::npos);
  EXPECT_NE(report.find("net freed"), std::string::npos);
}

TEST(TracecatProfile, CheckEnforcesAttributionAndConsistency) {
  const auto parsed = ParseProfileJson(SampleProfileRecord());
  ASSERT_TRUE(parsed.ok());
  // 95% attributed: passes a 90% floor, fails a 99% floor.
  EXPECT_TRUE(CheckProfile(parsed.value(), 90.0).ok());
  const auto strict = CheckProfile(parsed.value(), 99.0);
  EXPECT_FALSE(strict.ok());
  EXPECT_NE(strict.status().ToString().find("95.0%"), std::string::npos);
  // Tampered percent is caught even when the floor would pass.
  ProfileRecord tampered = parsed.value();
  tampered.attributed_percent = 99.0;
  EXPECT_FALSE(CheckProfile(tampered, 0.0).ok());
  // Phase totals must sum to the sample count.
  ProfileRecord short_phases = parsed.value();
  short_phases.phases.pop_back();
  EXPECT_FALSE(CheckProfile(short_phases, 0.0).ok());
  ProfileRecord bad_hz = parsed.value();
  bad_hz.sample_hz = 0;
  EXPECT_FALSE(CheckProfile(bad_hz, 0.0).ok());
}

TEST(TracecatProfile, DiffReportsShareMovements) {
  const auto from = ParseProfileJson(SampleProfileRecord());
  ASSERT_TRUE(from.ok());
  ProfileRecord to = from.value();
  to.label = "post";
  // greedy-pick shrinks 75% -> 40%, optimize grows 20% -> 55%.
  to.phases[0].percent = 40.0;
  to.phases[1].percent = 55.0;
  to.frames[0].self = 40;  // Score: 60% -> 20% self share
  const std::string diff = ProfileDiff(from.value(), to, 5);
  EXPECT_NE(diff.find("run (abc1234) -> post (abc1234)"), std::string::npos);
  EXPECT_NE(diff.find("compress/greedy-pick"), std::string::npos);
  EXPECT_NE(diff.find("-35.0%"), std::string::npos);
  EXPECT_NE(diff.find("+35.0%"), std::string::npos);
  EXPECT_NE(diff.find("isum::core::Score"), std::string::npos);
  EXPECT_NE(diff.find("-40.0%"), std::string::npos);
  EXPECT_NE(diff.find("allocated:"), std::string::npos);
}

TEST(TracecatReport, OmitsRobustnessSectionOnCleanRuns) {
  // Counters registered but all zero (the common fault-free run): the
  // section must not clutter the report.
  obs::MetricsRegistry registry;
  registry.GetCounter("fault.injected");
  registry.GetCounter("retry.attempts");
  registry.GetCounter("deadline.exceeded");
  const auto metrics =
      ParseMetricsJsonl(obs::MetricsJsonl(registry.Snapshot()));
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(Report({}, metrics.value(), 10).find("== robustness =="),
            std::string::npos);
}

}  // namespace
}  // namespace isum::tracecat
