// Tests for tools/tracecat: parsing the exporter's Chrome-trace and
// metrics-JSONL output (round-trip through src/obs/export.h), phase
// aggregation, top-k selection, and the rendered report.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tools/tracecat/tracecat.h"

namespace isum::tracecat {
namespace {

obs::TraceDump SampleDump() {
  obs::TraceDump dump;
  dump.thread_names = {"main", "pool-worker-0"};
  // name, tid, depth, start_nanos, dur_nanos
  dump.spans.push_back(
      obs::SpanRecord{"compress/total", 0, 0, 1000, 9000000});
  dump.spans.push_back(
      obs::SpanRecord{"compress/greedy-pick", 0, 1, 2000, 8000000});
  dump.spans.push_back(
      obs::SpanRecord{"whatif/optimize", 1, 0, 3000, 500000});
  dump.spans.push_back(
      obs::SpanRecord{"whatif/optimize", 1, 0, 600000, 700000});
  return dump;
}

TEST(TracecatParse, RoundTripsExporterOutput) {
  const std::string json = obs::ChromeTraceJson(SampleDump());
  const auto events = ParseChromeTrace(json);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  // 2 thread_name metadata events + 4 spans.
  ASSERT_EQ(events.value().size(), 6u);
  EXPECT_EQ(events.value()[0].phase, "M");
  EXPECT_EQ(events.value()[0].thread_name, "main");
  EXPECT_EQ(events.value()[1].thread_name, "pool-worker-0");
  const TraceEvent& span = events.value()[2];
  EXPECT_EQ(span.phase, "X");
  EXPECT_EQ(span.name, "compress/total");
  EXPECT_EQ(span.tid, 0u);
  EXPECT_DOUBLE_EQ(span.ts_us, 1.0);
  EXPECT_DOUBLE_EQ(span.dur_us, 9000.0);
}

TEST(TracecatParse, RejectsMalformedInput) {
  EXPECT_FALSE(ParseChromeTrace("not json\n").ok());
  EXPECT_FALSE(ParseChromeTrace("[\n{\"ph\":\"Q\",\"tid\":0}\n]\n").ok());
}

TEST(TracecatAggregate, SumsPerPhaseSortedByTotal) {
  const std::string json = obs::ChromeTraceJson(SampleDump());
  const auto events = ParseChromeTrace(json);
  ASSERT_TRUE(events.ok());
  const std::vector<PhaseStat> phases = AggregatePhases(events.value());
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].name, "compress/total");
  EXPECT_EQ(phases[0].count, 1u);
  EXPECT_DOUBLE_EQ(phases[0].total_us, 9000.0);
  EXPECT_EQ(phases[1].name, "compress/greedy-pick");
  EXPECT_EQ(phases[2].name, "whatif/optimize");
  EXPECT_EQ(phases[2].count, 2u);
  EXPECT_DOUBLE_EQ(phases[2].total_us, 1200.0);
  EXPECT_DOUBLE_EQ(phases[2].max_us, 700.0);
}

TEST(TracecatTopSlowest, OrdersByDurationAndTruncates) {
  const std::string json = obs::ChromeTraceJson(SampleDump());
  const auto events = ParseChromeTrace(json);
  ASSERT_TRUE(events.ok());
  const std::vector<TraceEvent> top = TopSlowest(events.value(), 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].name, "compress/total");
  EXPECT_EQ(top[1].name, "compress/greedy-pick");
}

TEST(TracecatMetrics, ParsesExporterJsonl) {
  obs::MetricsRegistry registry;
  registry.GetCounter("whatif.optimizer_calls")->Add(30);
  registry.GetCounter("whatif.cache_hits")->Add(70);
  obs::Histogram* lat = registry.GetHistogram("whatif.optimize_nanos");
  for (int i = 0; i < 30; ++i) lat->Observe(1000000);
  const std::string jsonl = obs::MetricsJsonl(registry.Snapshot());
  const auto parsed = ParseMetricsJsonl(jsonl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 3u);
  bool saw_calls = false, saw_hist = false;
  for (const MetricLine& m : parsed.value()) {
    if (m.type == "counter" && m.name == "whatif.optimizer_calls") {
      saw_calls = true;
      EXPECT_DOUBLE_EQ(m.value, 30.0);
    }
    if (m.type == "histogram" && m.name == "whatif.optimize_nanos") {
      saw_hist = true;
      EXPECT_EQ(m.count, 30u);
      EXPECT_GT(m.p50, 0.0);
    }
  }
  EXPECT_TRUE(saw_calls);
  EXPECT_TRUE(saw_hist);
}

TEST(TracecatReport, RendersPhaseAndWhatIfTables) {
  const std::string json = obs::ChromeTraceJson(SampleDump());
  const auto events = ParseChromeTrace(json);
  ASSERT_TRUE(events.ok());

  obs::MetricsRegistry registry;
  registry.GetCounter("whatif.optimizer_calls")->Add(25);
  registry.GetCounter("whatif.cache_hits")->Add(75);
  const auto metrics =
      ParseMetricsJsonl(obs::MetricsJsonl(registry.Snapshot()));
  ASSERT_TRUE(metrics.ok());

  const std::string report = Report(events.value(), metrics.value(), 3);
  EXPECT_NE(report.find("== per-phase totals =="), std::string::npos);
  EXPECT_NE(report.find("compress/greedy-pick"), std::string::npos);
  EXPECT_NE(report.find("== top 3 slowest spans =="), std::string::npos);
  EXPECT_NE(report.find("== what-if optimizer =="), std::string::npos);
  EXPECT_NE(report.find("optimizer calls: 25"), std::string::npos);
  EXPECT_NE(report.find("hit rate:        75.0%"), std::string::npos);
}

TEST(TracecatReport, EmptyTraceStillRenders) {
  const std::string report = Report({}, {}, 10);
  EXPECT_NE(report.find("(no spans)"), std::string::npos);
}

TEST(TracecatReport, RendersRobustnessCountersWhenPresent) {
  obs::MetricsRegistry registry;
  registry.GetCounter("fault.injected")->Add(12);
  registry.GetCounter("retry.attempts")->Add(34);
  registry.GetCounter("deadline.exceeded")->Add(5);
  const auto metrics =
      ParseMetricsJsonl(obs::MetricsJsonl(registry.Snapshot()));
  ASSERT_TRUE(metrics.ok());
  const std::string report = Report({}, metrics.value(), 10);
  EXPECT_NE(report.find("== robustness =="), std::string::npos);
  EXPECT_NE(report.find("faults injected:   12"), std::string::npos);
  EXPECT_NE(report.find("retry attempts:    34"), std::string::npos);
  EXPECT_NE(report.find("deadline exceeded: 5"), std::string::npos);
}

TEST(TracecatReport, OmitsRobustnessSectionOnCleanRuns) {
  // Counters registered but all zero (the common fault-free run): the
  // section must not clutter the report.
  obs::MetricsRegistry registry;
  registry.GetCounter("fault.injected");
  registry.GetCounter("retry.attempts");
  registry.GetCounter("deadline.exceeded");
  const auto metrics =
      ParseMetricsJsonl(obs::MetricsJsonl(registry.Snapshot()));
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(Report({}, metrics.value(), 10).find("== robustness =="),
            std::string::npos);
}

}  // namespace
}  // namespace isum::tracecat
