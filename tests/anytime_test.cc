// Tests for the anytime (time-budgeted) tuning mode and parser robustness
// against adversarial input.

#include <gtest/gtest.h>

#include <optional>

#include "advisor/advisor.h"
#include "common/rng.h"
#include "sql/parser.h"
#include "workload/workload_factory.h"

namespace isum {
namespace {

class AnytimeTest : public ::testing::Test {
 protected:
  AnytimeTest() {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 2;
    env_ = workload::MakeTpch(gen);
    for (size_t i = 0; i < env_->workload->size(); ++i) {
      queries_.push_back({&env_->workload->query(i).bound, 1.0});
    }
  }

  std::optional<workload::GeneratedWorkload> env_;
  std::vector<advisor::WeightedQuery> queries_;
};

TEST_F(AnytimeTest, TinyBudgetReturnsQuicklyAndValid) {
  advisor::TuningOptions options;
  options.max_indexes = 20;
  options.time_budget_seconds = 1e-6;  // effectively zero
  advisor::DtaStyleAdvisor advisor(env_->cost_model.get());
  const advisor::TuningResult result = advisor.Tune(queries_, options);
  // Must return promptly (well under a second even with slack) and
  // produce an internally consistent (possibly empty) result.
  EXPECT_LT(result.elapsed_seconds, 1.0);
  EXPECT_LE(result.final_cost, result.initial_cost + 1e-9);
}

TEST_F(AnytimeTest, UnlimitedBudgetMatchesDefault) {
  advisor::TuningOptions budgeted;
  budgeted.max_indexes = 8;
  budgeted.time_budget_seconds = 3600.0;  // never binds
  advisor::TuningOptions plain;
  plain.max_indexes = 8;
  advisor::DtaStyleAdvisor advisor(env_->cost_model.get());
  const auto a = advisor.Tune(queries_, budgeted);
  const auto b = advisor.Tune(queries_, plain);
  EXPECT_EQ(a.configuration.StableHash(), b.configuration.StableHash());
}

TEST_F(AnytimeTest, LargerBudgetNeverSmallerConfiguration) {
  advisor::DtaStyleAdvisor advisor(env_->cost_model.get());
  advisor::TuningOptions tiny;
  tiny.max_indexes = 20;
  tiny.time_budget_seconds = 1e-6;
  advisor::TuningOptions big;
  big.max_indexes = 20;
  big.time_budget_seconds = 3600.0;
  const auto small_result = advisor.Tune(queries_, tiny);
  const auto big_result = advisor.Tune(queries_, big);
  EXPECT_LE(small_result.configuration.size(), big_result.configuration.size());
  EXPECT_GE(small_result.final_cost, big_result.final_cost - 1e-9);
}

// --- Parser robustness: random garbage must produce Status errors (or
// parse), never crashes or hangs. ---

TEST(ParserRobustness, RandomBytesNeverCrash) {
  Rng rng(99);
  const char alphabet[] =
      "SELECT FROM WHERE GROUP BY ORDER AND OR NOT IN LIKE ( ) , . ; = < > "
      "'abc' 1 2.5 x y_z *";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string input;
    const int len = static_cast<int>(rng.NextUint64(60));
    for (int i = 0; i < len; ++i) {
      input.push_back(alphabet[rng.NextUint64(sizeof(alphabet) - 1)]);
    }
    auto result = sql::ParseSelect(input);  // must not crash
    if (result.ok()) {
      EXPECT_FALSE(result->from.empty());
    }
  }
}

TEST(ParserRobustness, TokenSoupNeverCrashes) {
  Rng rng(7);
  const std::vector<std::string> tokens = {
      "SELECT", "FROM", "WHERE",  "GROUP",   "BY",   "ORDER", "LIMIT",
      "AND",    "OR",   "NOT",    "BETWEEN", "IN",   "LIKE",  "IS",
      "NULL",   "AS",   "JOIN",   "ON",      "(",    ")",     ",",
      "*",      "=",    "<",      ">=",      "<>",   "+",     "-",
      "/",      "t",    "u",      "a",       "b",    "'s'",   "42",
      "3.14",   ".",    ";",      "COUNT",   "DESC"};
  for (int trial = 0; trial < 2000; ++trial) {
    std::string input;
    const int len = 1 + static_cast<int>(rng.NextUint64(25));
    for (int i = 0; i < len; ++i) {
      input += tokens[rng.NextUint64(tokens.size())];
      input += " ";
    }
    auto result = sql::ParseSelect(input);
    (void)result;  // any Status is fine; crashing/hanging is not
  }
}

TEST(ParserRobustness, DeeplyNestedExpressionsBounded) {
  // Nesting within the parser's documented depth limit must parse fine.
  std::string sql = "SELECT ";
  for (int i = 0; i < 150; ++i) sql += "(";
  sql += "1";
  for (int i = 0; i < 150; ++i) sql += ")";
  sql += " FROM t";
  auto result = sql::ParseSelect(sql);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

TEST(ParserRobustness, ExcessiveNestingRejectedNotCrashed) {
  // Beyond the limit the parser must return a clean ParseError instead of
  // recursing until the stack overflows (which ASan's larger frames would
  // otherwise turn into a crash long before the default build notices).
  std::string sql = "SELECT ";
  for (int i = 0; i < 5000; ++i) sql += "(";
  sql += "1";
  for (int i = 0; i < 5000; ++i) sql += ")";
  sql += " FROM t";
  auto result = sql::ParseSelect(sql);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("nesting"), std::string::npos)
      << result.status().ToString();
}

}  // namespace
}  // namespace isum
