// Tests for the baseline compressors (§8 of the paper): Uniform, Cost,
// Stratified, GSUM and k-medoid.

#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "baselines/gsum.h"
#include "baselines/kmedoid.h"
#include "baselines/simple.h"
#include "workload/workload_factory.h"

namespace isum::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 3;
    env_ = workload::MakeTpch(gen);
  }

  const workload::Workload& W() { return *env_->workload; }

  void ExpectValidCompression(const workload::CompressedWorkload& c, size_t k) {
    ASSERT_EQ(c.size(), k);
    std::set<size_t> uniq;
    double total = 0.0;
    for (const auto& e : c.entries) {
      EXPECT_LT(e.query_index, W().size());
      uniq.insert(e.query_index);
      EXPECT_GE(e.weight, 0.0);
      total += e.weight;
    }
    EXPECT_EQ(uniq.size(), k) << "duplicate selections";
    EXPECT_NEAR(total, 1.0, 1e-9);
  }

  std::optional<workload::GeneratedWorkload> env_;
};

TEST_F(BaselinesTest, UniformSamplesKDistinct) {
  UniformSamplingCompressor uniform(17);
  ExpectValidCompression(uniform.Compress(W(), 12), 12);
}

TEST_F(BaselinesTest, UniformDeterministicPerSeed) {
  UniformSamplingCompressor a(5), b(5), c(6);
  const auto ca = a.Compress(W(), 8);
  const auto cb = b.Compress(W(), 8);
  ASSERT_EQ(ca.size(), cb.size());
  for (size_t i = 0; i < ca.entries.size(); ++i) {
    EXPECT_EQ(ca.entries[i].query_index, cb.entries[i].query_index);
  }
  const auto cc = c.Compress(W(), 8);
  bool differs = false;
  for (size_t i = 0; i < ca.entries.size(); ++i) {
    differs |= ca.entries[i].query_index != cc.entries[i].query_index;
  }
  EXPECT_TRUE(differs);
}

TEST_F(BaselinesTest, TopCostPicksMostExpensive) {
  TopCostCompressor cost;
  const auto c = cost.Compress(W(), 5);
  ExpectValidCompression(c, 5);
  // Every selected query must cost at least as much as every unselected one.
  double min_selected = 1e300;
  std::set<size_t> selected;
  for (const auto& e : c.entries) {
    selected.insert(e.query_index);
    min_selected = std::min(min_selected, W().query(e.query_index).base_cost);
  }
  for (size_t i = 0; i < W().size(); ++i) {
    if (!selected.contains(i)) {
      EXPECT_LE(W().query(i).base_cost, min_selected + 1e-9);
    }
  }
}

TEST_F(BaselinesTest, StratifiedCoversTemplatesEvenly) {
  StratifiedCompressor stratified(3);
  // k = 22 with 22 templates: exactly one instance per template.
  const auto c = stratified.Compress(W(), 22);
  ExpectValidCompression(c, 22);
  std::set<uint64_t> templates;
  for (const auto& e : c.entries) {
    templates.insert(W().query(e.query_index).template_hash);
  }
  EXPECT_EQ(templates.size(), 22u);
}

TEST_F(BaselinesTest, StratifiedSecondRoundRevisitsTemplates) {
  StratifiedCompressor stratified(3);
  const auto c = stratified.Compress(W(), 44);
  ExpectValidCompression(c, 44);
  std::map<uint64_t, int> per_template;
  for (const auto& e : c.entries) {
    per_template[W().query(e.query_index).template_hash]++;
  }
  for (const auto& [hash, count] : per_template) EXPECT_EQ(count, 2);
}

TEST_F(BaselinesTest, GsumSelectsAndWeighs) {
  GsumCompressor gsum;
  ExpectValidCompression(gsum.Compress(W(), 10), 10);
}

TEST_F(BaselinesTest, GsumPrefersCoverage) {
  // GSUM's first pick should touch many frequent columns; compare its column
  // footprint against the minimum across the workload.
  GsumCompressor gsum(1.0);  // pure coverage
  const auto c = gsum.Compress(W(), 1);
  ASSERT_EQ(c.size(), 1u);
  const size_t picked = c.entries[0].query_index;
  size_t min_cols = 1000, picked_cols =
      W().query(picked).bound.ReferencedColumns().size();
  for (size_t i = 0; i < W().size(); ++i) {
    min_cols = std::min(min_cols, W().query(i).bound.ReferencedColumns().size());
  }
  EXPECT_GT(picked_cols, min_cols);
}

TEST_F(BaselinesTest, KMedoidConvergesAndWeighsByClusterSize) {
  KMedoidCompressor kmedoid(11);
  const auto c = kmedoid.Compress(W(), 6);
  ExpectValidCompression(c, 6);
}

TEST_F(BaselinesTest, KMedoidMedoidsAreClusterMembers) {
  // With 3 instances per template and k = #templates, medoids should land
  // one per template for most clusters (similar instances cluster together).
  KMedoidCompressor kmedoid(11);
  const auto c = kmedoid.Compress(W(), 22);
  std::set<uint64_t> templates;
  for (const auto& e : c.entries) {
    templates.insert(W().query(e.query_index).template_hash);
  }
  EXPECT_GE(templates.size(), 15u);
}

TEST_F(BaselinesTest, AllBaselinesHandleKEqualsN) {
  const size_t n = W().size();
  UniformSamplingCompressor uniform(1);
  TopCostCompressor cost;
  StratifiedCompressor stratified(1);
  GsumCompressor gsum;
  KMedoidCompressor kmedoid(1, 5);
  for (Compressor* c : std::initializer_list<Compressor*>{
           &uniform, &cost, &stratified, &gsum, &kmedoid}) {
    const auto compressed = c->Compress(W(), n);
    EXPECT_EQ(compressed.size(), n) << c->name();
  }
}

TEST_F(BaselinesTest, NamesAreStable) {
  EXPECT_EQ(UniformSamplingCompressor().name(), "Uniform");
  EXPECT_EQ(TopCostCompressor().name(), "Cost");
  EXPECT_EQ(StratifiedCompressor().name(), "Stratified");
  EXPECT_EQ(GsumCompressor().name(), "GSUM");
  EXPECT_EQ(KMedoidCompressor().name(), "k-medoid");
}

}  // namespace
}  // namespace isum::baselines
