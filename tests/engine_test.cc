// Unit tests for src/engine: index model, configurations, cost model
// properties, optimizer plan choices, and the what-if API.

#include <gtest/gtest.h>

#include "catalog/schema_builder.h"
#include "common/string_util.h"
#include "engine/what_if.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "stats/data_generator.h"

namespace isum::engine {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : stats_(&cat_), cost_model_(&cat_, &stats_) {
    catalog::SchemaBuilder b(&cat_);
    b.Table("big", 10'000'000)
        .Key("id", catalog::ColumnType::kInt)
        .Col("fk", catalog::ColumnType::kInt)
        .Col("v", catalog::ColumnType::kInt)
        .Col("w", catalog::ColumnType::kDecimal)
        .Col("cat", catalog::ColumnType::kInt);
    b.Table("small", 10'000)
        .Key("sid", catalog::ColumnType::kInt)
        .Col("attr", catalog::ColumnType::kInt);

    stats::DataGenerator dg;
    Rng rng(1);
    auto set = [&](const char* t, const char* c, stats::Distribution d,
                   uint64_t distinct, double lo, double hi) {
      stats::ColumnDataSpec spec;
      spec.distribution = d;
      spec.distinct = distinct;
      spec.domain_min = lo;
      spec.domain_max = hi;
      const catalog::ColumnId id = cat_.ResolveColumn(t, c);
      stats_.SetStats(id,
                      dg.Generate(spec, cat_.table(id.table).row_count(), rng));
    };
    auto key = [&](const char* t, const char* c) {
      stats::ColumnDataSpec spec;
      spec.distribution = stats::Distribution::kKey;
      const catalog::ColumnId id = cat_.ResolveColumn(t, c);
      stats_.SetStats(id,
                      dg.Generate(spec, cat_.table(id.table).row_count(), rng));
    };
    key("big", "id");
    set("big", "fk", stats::Distribution::kUniform, 10'000, 1, 10'000);
    set("big", "v", stats::Distribution::kUniform, 1'000'000, 0, 1'000'000);
    set("big", "w", stats::Distribution::kUniform, 100'000, 0, 10'000);
    set("big", "cat", stats::Distribution::kUniform, 20, 0, 20);
    key("small", "sid");
    set("small", "attr", stats::Distribution::kUniform, 100, 0, 100);
  }

  catalog::ColumnId Col(const char* t, const char* c) {
    return cat_.ResolveColumn(t, c);
  }

  sql::BoundQuery Bind(const std::string& sql) {
    auto stmt = sql::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    sql::Binder binder(&cat_, &stats_);
    auto bound = binder.Bind(*stmt, sql);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return std::move(bound).value();
  }

  catalog::Catalog cat_;
  stats::StatsManager stats_;
  CostModel cost_model_;
};

// --- Index model. ---

TEST_F(EngineTest, IndexCanonicalizesIncludes) {
  Index a(0, {Col("big", "v")}, {Col("big", "w"), Col("big", "cat")});
  Index b(0, {Col("big", "v")}, {Col("big", "cat"), Col("big", "w")});
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::hash<Index>()(a), std::hash<Index>()(b));
  // Include duplicates of keys are dropped.
  Index c(0, {Col("big", "v")}, {Col("big", "v"), Col("big", "w")});
  EXPECT_EQ(c.include_columns().size(), 1u);
}

TEST_F(EngineTest, IndexKeyOrderMatters) {
  Index a(0, {Col("big", "v"), Col("big", "w")});
  Index b(0, {Col("big", "w"), Col("big", "v")});
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.CanonicalKey(), b.CanonicalKey());
}

TEST_F(EngineTest, IndexSizeGrowsWithColumns) {
  Index narrow(0, {Col("big", "v")});
  Index wide(0, {Col("big", "v")}, {Col("big", "w"), Col("big", "cat")});
  EXPECT_GT(wide.SizeBytes(cat_), narrow.SizeBytes(cat_));
  EXPECT_GE(narrow.HeightLevels(cat_), 2);  // 10M rows is multi-level
}

TEST_F(EngineTest, IndexContainsColumn) {
  Index index(0, {Col("big", "v")}, {Col("big", "w")});
  EXPECT_TRUE(index.ContainsColumn(Col("big", "v")));
  EXPECT_TRUE(index.ContainsColumn(Col("big", "w")));
  EXPECT_FALSE(index.ContainsColumn(Col("big", "cat")));
}

// --- Configuration. ---

TEST_F(EngineTest, ConfigurationDeduplicates) {
  Configuration config;
  Index index(0, {Col("big", "v")});
  EXPECT_TRUE(config.Add(index));
  EXPECT_FALSE(config.Add(index));
  EXPECT_EQ(config.size(), 1u);
  EXPECT_TRUE(config.Remove(index));
  EXPECT_TRUE(config.empty());
}

TEST_F(EngineTest, ConfigurationHashOrderIndependent) {
  Index i1(0, {Col("big", "v")});
  Index i2(0, {Col("big", "w")});
  Configuration a;
  a.Add(i1);
  a.Add(i2);
  Configuration b;
  b.Add(i2);
  b.Add(i1);
  EXPECT_EQ(a.StableHash(), b.StableHash());
  EXPECT_NE(a.StableHash(), Configuration().StableHash());
}

TEST_F(EngineTest, IndexesOnTableFilters) {
  Configuration config;
  config.Add(Index(cat_.FindTable("big")->id(), {Col("big", "v")}));
  config.Add(Index(cat_.FindTable("small")->id(), {Col("small", "attr")}));
  EXPECT_EQ(config.IndexesOnTable(cat_.FindTable("big")->id()).size(), 1u);
}

// --- Cost model properties. ---

TEST_F(EngineTest, SeekBeatsScanForSelectivePredicate) {
  sql::BoundQuery q = Bind("SELECT v FROM big WHERE v BETWEEN 100 AND 200");
  Configuration config;
  config.Add(Index(cat_.FindTable("big")->id(), {Col("big", "v")}));
  const AccessPath path = cost_model_.BestAccessPath(
      cat_.FindTable("big")->id(), q.filters, q.ReferencedColumns(), {}, config);
  EXPECT_NE(path.index, nullptr);
  EXPECT_LT(path.cost, cost_model_.FullScanCost(cat_.FindTable("big")->id()));
}

TEST_F(EngineTest, ScanWinsForUnselectivePredicate) {
  sql::BoundQuery q = Bind("SELECT v, w, cat FROM big WHERE v > 100");
  Configuration config;
  config.Add(Index(cat_.FindTable("big")->id(), {Col("big", "v")}));
  const AccessPath path = cost_model_.BestAccessPath(
      cat_.FindTable("big")->id(), q.filters, q.ReferencedColumns(), {}, config);
  EXPECT_EQ(path.index, nullptr);  // fetching ~all rows via lookups is worse
}

TEST_F(EngineTest, CoveringSeekCheaperThanNonCovering) {
  sql::BoundQuery q =
      Bind("SELECT w FROM big WHERE v BETWEEN 0 AND 20000");
  const catalog::TableId big = cat_.FindTable("big")->id();
  Configuration key_only;
  key_only.Add(Index(big, {Col("big", "v")}));
  Configuration covering;
  covering.Add(Index(big, {Col("big", "v")}, {Col("big", "w")}));
  const AccessPath p1 = cost_model_.BestAccessPath(
      big, q.filters, q.ReferencedColumns(), {}, key_only);
  const AccessPath p2 = cost_model_.BestAccessPath(
      big, q.filters, q.ReferencedColumns(), {}, covering);
  EXPECT_TRUE(p2.covering);
  EXPECT_LT(p2.cost, p1.cost);
}

TEST_F(EngineTest, SeekCostMonotonicInSelectivity) {
  const catalog::TableId big = cat_.FindTable("big")->id();
  Configuration config;
  config.Add(Index(big, {Col("big", "v")}));
  double prev_cost = 0.0;
  for (double width : {100.0, 1000.0, 10000.0, 100000.0}) {
    sql::BoundQuery q = Bind(StrFormat(
        "SELECT v FROM big WHERE v BETWEEN 0 AND %.0f", width));
    const AccessPath path = cost_model_.BestAccessPath(
        big, q.filters, q.ReferencedColumns(), {}, config);
    EXPECT_GE(path.cost, prev_cost);
    prev_cost = path.cost;
  }
}

TEST_F(EngineTest, MultiColumnSeekPrefixMatching) {
  const catalog::TableId big = cat_.FindTable("big")->id();
  sql::BoundQuery q =
      Bind("SELECT cat FROM big WHERE cat = 5 AND v BETWEEN 0 AND 1000");
  Configuration config;
  config.Add(Index(big, {Col("big", "cat"), Col("big", "v")}));
  const AccessPath path = cost_model_.BestAccessPath(
      big, q.filters, q.ReferencedColumns(), {}, config);
  ASSERT_NE(path.index, nullptr);
  // Both predicates participate: selectivity ~ (1/20) * small range.
  EXPECT_LT(path.seek_selectivity, 0.06);
}

TEST_F(EngineTest, RangeColumnStopsPrefix) {
  const catalog::TableId big = cat_.FindTable("big")->id();
  // Index (v, cat): v range match consumes the prefix; cat can't extend it.
  sql::BoundQuery q =
      Bind("SELECT cat FROM big WHERE v BETWEEN 0 AND 1000 AND cat = 5");
  Configuration config;
  config.Add(Index(big, {Col("big", "v"), Col("big", "cat")}));
  const AccessPath path = cost_model_.BestAccessPath(
      big, q.filters, q.ReferencedColumns(), {}, config);
  ASSERT_NE(path.index, nullptr);
  sql::BoundQuery q_v = Bind("SELECT cat FROM big WHERE v BETWEEN 0 AND 1000");
  const AccessPath path_v = cost_model_.BestAccessPath(
      big, q_v.filters, q_v.ReferencedColumns(), {}, config);
  EXPECT_NEAR(path.seek_selectivity, path_v.seek_selectivity, 1e-9);
}

TEST_F(EngineTest, SortCostTopNCheaper) {
  EXPECT_LT(cost_model_.SortCost(1e6, 10), cost_model_.SortCost(1e6, std::nullopt));
  EXPECT_EQ(cost_model_.SortCost(1.0, std::nullopt), 0.0);
}

TEST_F(EngineTest, OrderProvidedByIndexDetected) {
  const catalog::TableId big = cat_.FindTable("big")->id();
  sql::BoundQuery q = Bind("SELECT v FROM big ORDER BY v");
  Configuration config;
  config.Add(Index(big, {Col("big", "v")}));
  const AccessPath path = cost_model_.BestAccessPath(
      big, q.filters, q.ReferencedColumns(), {Col("big", "v")}, config);
  EXPECT_TRUE(path.provides_order);
}

TEST_F(EngineTest, OrderAfterEqualityPrefix) {
  const catalog::TableId big = cat_.FindTable("big")->id();
  sql::BoundQuery q = Bind("SELECT v FROM big WHERE cat = 3 ORDER BY v");
  Configuration config;
  config.Add(Index(big, {Col("big", "cat"), Col("big", "v")}));
  const AccessPath path = cost_model_.BestAccessPath(
      big, q.filters, q.ReferencedColumns(), {Col("big", "v")}, config);
  EXPECT_TRUE(path.provides_order);
}

// --- Optimizer. ---

TEST_F(EngineTest, AddingIndexNeverIncreasesPlanCost) {
  Optimizer opt(&cost_model_);
  const std::vector<std::string> queries = {
      "SELECT v FROM big WHERE v BETWEEN 0 AND 500",
      "SELECT cat, COUNT(*) FROM big GROUP BY cat",
      "SELECT b.v FROM big b, small s WHERE b.fk = s.sid AND s.attr = 3",
      "SELECT w FROM big WHERE cat = 7 ORDER BY w LIMIT 10",
  };
  const catalog::TableId big = cat_.FindTable("big")->id();
  std::vector<Index> indexes = {
      Index(big, {Col("big", "v")}),
      Index(big, {Col("big", "cat"), Col("big", "w")}),
      Index(big, {Col("big", "fk")}, {Col("big", "v")}),
  };
  for (const std::string& sql : queries) {
    sql::BoundQuery q = Bind(sql);
    Configuration config;
    double prev = opt.Cost(q, config);
    for (const Index& index : indexes) {
      config.Add(index);
      const double cost = opt.Cost(q, config);
      EXPECT_LE(cost, prev + 1e-6) << sql;
      prev = cost;
    }
  }
}

TEST_F(EngineTest, JoinPrefersConnectedOrder) {
  sql::BoundQuery q = Bind(
      "SELECT b.v FROM big b, small s WHERE b.fk = s.sid AND s.attr = 3");
  Optimizer opt(&cost_model_);
  PlanSummary plan = opt.Optimize(q, Configuration());
  ASSERT_EQ(plan.tables.size(), 2u);
  EXPECT_NE(plan.tables[1].join_method, JoinMethod::kCrossJoin);
}

TEST_F(EngineTest, IndexNestedLoopChosenWithJoinIndex) {
  sql::BoundQuery q = Bind(
      "SELECT s.attr FROM big b, small s WHERE b.fk = s.sid AND "
      "b.v BETWEEN 0 AND 100");
  const catalog::TableId small = cat_.FindTable("small")->id();
  const catalog::TableId big = cat_.FindTable("big")->id();
  Configuration config;
  config.Add(Index(big, {Col("big", "v")}, {Col("big", "fk")}));
  config.Add(Index(small, {Col("small", "sid")}, {Col("small", "attr")}));
  Optimizer opt(&cost_model_);
  PlanSummary plan = opt.Optimize(q, config);
  ASSERT_EQ(plan.tables.size(), 2u);
  // Highly selective driver + join index on the inner: INL should win.
  EXPECT_EQ(plan.tables[1].join_method, JoinMethod::kIndexNestedLoop);
  EXPECT_LT(plan.total_cost, opt.Cost(q, Configuration()));
}

TEST_F(EngineTest, StreamAggregateWhenIndexProvidesOrder) {
  sql::BoundQuery q = Bind("SELECT cat, COUNT(*) FROM big GROUP BY cat");
  const catalog::TableId big = cat_.FindTable("big")->id();
  Configuration config;
  config.Add(Index(big, {Col("big", "cat")}));
  Optimizer opt(&cost_model_);
  PlanSummary with = opt.Optimize(q, config);
  EXPECT_TRUE(with.stream_aggregate);
  PlanSummary without = opt.Optimize(q, Configuration());
  EXPECT_FALSE(without.stream_aggregate);
  EXPECT_LT(with.total_cost, without.total_cost);
}

TEST_F(EngineTest, SortAvoidedBySingleTableIndexOrder) {
  sql::BoundQuery q = Bind("SELECT v FROM big ORDER BY v");
  const catalog::TableId big = cat_.FindTable("big")->id();
  Configuration config;
  config.Add(Index(big, {Col("big", "v")}));
  Optimizer opt(&cost_model_);
  PlanSummary with = opt.Optimize(q, config);
  EXPECT_TRUE(with.sort_avoided_by_index);
  EXPECT_FALSE(with.sort_needed);
  PlanSummary without = opt.Optimize(q, Configuration());
  EXPECT_TRUE(without.sort_needed);
}

TEST_F(EngineTest, OutputRowsRespectLimit) {
  sql::BoundQuery q = Bind("SELECT v FROM big WHERE v > 0 ORDER BY v LIMIT 7");
  Optimizer opt(&cost_model_);
  PlanSummary plan = opt.Optimize(q, Configuration());
  EXPECT_LE(plan.output_rows, 7.0);
}

TEST_F(EngineTest, ExplainMentionsChosenStructures) {
  sql::BoundQuery q = Bind(
      "SELECT b.cat, COUNT(*) FROM big b, small s WHERE b.fk = s.sid "
      "GROUP BY b.cat");
  Optimizer opt(&cost_model_);
  const std::string text = opt.Optimize(q, Configuration()).Explain(cat_);
  EXPECT_NE(text.find("hash join"), std::string::npos);
  EXPECT_NE(text.find("aggregate"), std::string::npos);
}

// --- What-if. ---

TEST_F(EngineTest, WhatIfCachesPerQueryAndConfig) {
  sql::BoundQuery q = Bind("SELECT v FROM big WHERE v < 100");
  WhatIfOptimizer what_if(&cost_model_);
  Configuration empty;
  const double c1 = what_if.Cost(q, empty);
  const double c2 = what_if.Cost(q, empty);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(what_if.optimizer_calls(), 1u);
  EXPECT_EQ(what_if.cache_hits(), 1u);

  Configuration config;
  config.Add(Index(cat_.FindTable("big")->id(), {Col("big", "v")}));
  what_if.Cost(q, config);
  EXPECT_EQ(what_if.optimizer_calls(), 2u);

  what_if.ResetCounters();
  EXPECT_EQ(what_if.optimizer_calls(), 0u);
  what_if.ClearCache();
  what_if.Cost(q, empty);
  EXPECT_EQ(what_if.optimizer_calls(), 1u);
}

TEST_F(EngineTest, WhatIfMatchesOptimizer) {
  sql::BoundQuery q = Bind("SELECT cat, COUNT(*) FROM big GROUP BY cat");
  WhatIfOptimizer what_if(&cost_model_);
  Optimizer opt(&cost_model_);
  EXPECT_DOUBLE_EQ(what_if.Cost(q, Configuration()),
                   opt.Cost(q, Configuration()));
}

}  // namespace
}  // namespace isum::engine
