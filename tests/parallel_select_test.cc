// Bit-identity of the sharded all-pairs greedy selection: thread count must
// never change which queries are selected nor the recorded benefits (the
// AllPairsGreedySelect contract; same discipline as the ThreadPool reduction
// tests). Runs under the TSan CI job (filter: ParallelSelect*).

#include <gtest/gtest.h>

#include <cstring>
#include <optional>

#include "common/thread_pool.h"
#include "core/isum.h"
#include "workload/workload_factory.h"

namespace isum::core {
namespace {

class ParallelSelectTest : public ::testing::Test {
 protected:
  ParallelSelectTest() {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 3;
    env_ = workload::MakeTpch(gen);
  }

  const workload::Workload& W() { return *env_->workload; }

  CompressionState State() {
    return CompressionState(W(), {}, UtilityMode::kCostOnly);
  }

  std::optional<workload::GeneratedWorkload> env_;
};

/// Benefits compared as raw bytes: bit-identical, not just approximately
/// equal.
void ExpectBitIdentical(const SelectionResult& a, const SelectionResult& b) {
  ASSERT_EQ(a.selected.size(), b.selected.size());
  EXPECT_EQ(a.selected, b.selected);
  ASSERT_EQ(a.selection_benefits.size(), b.selection_benefits.size());
  EXPECT_EQ(std::memcmp(a.selection_benefits.data(),
                        b.selection_benefits.data(),
                        a.selection_benefits.size() * sizeof(double)),
            0);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
}

TEST_F(ParallelSelectTest, SerialAndThreadedSelectionsBitIdentical) {
  CompressionState serial_state = State();
  const SelectionResult serial = AllPairsGreedySelect(
      serial_state, 12, UpdateStrategy::kUtilityAndFeatureZero);
  ASSERT_EQ(serial.selected.size(), 12u);

  for (size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    CompressionState state = State();
    const SelectionResult threaded =
        AllPairsGreedySelect(state, 12, UpdateStrategy::kUtilityAndFeatureZero,
                             TimeBudget(), &pool);
    ExpectBitIdentical(serial, threaded);
  }
}

TEST_F(ParallelSelectTest, BitIdenticalAcrossUpdateStrategies) {
  for (UpdateStrategy strategy :
       {UpdateStrategy::kUtilityOnly, UpdateStrategy::kUtilityAndWeightSubtract,
        UpdateStrategy::kNone}) {
    CompressionState serial_state = State();
    const SelectionResult serial =
        AllPairsGreedySelect(serial_state, 6, strategy);
    ThreadPool pool(4);
    CompressionState state = State();
    const SelectionResult threaded =
        AllPairsGreedySelect(state, 6, strategy, TimeBudget(), &pool);
    ExpectBitIdentical(serial, threaded);
  }
}

TEST_F(ParallelSelectTest, IsumNumThreadsOptionMatchesSerial) {
  IsumOptions serial_options;
  serial_options.algorithm = SelectionAlgorithm::kAllPairs;
  IsumOptions threaded_options = serial_options;
  threaded_options.num_threads = 8;

  const SelectionResult serial = Isum(&W(), serial_options).Select(10);
  const SelectionResult threaded = Isum(&W(), threaded_options).Select(10);
  ExpectBitIdentical(serial, threaded);
}

TEST_F(ParallelSelectTest, ExpiredBudgetReturnsPrefixWithStopReason) {
  ThreadPool pool(4);
  CompressionState state = State();
  const SelectionResult result =
      AllPairsGreedySelect(state, 8, UpdateStrategy::kUtilityAndFeatureZero,
                           TimeBudget::After(0.0), &pool);
  EXPECT_TRUE(result.selected.empty());
  EXPECT_EQ(result.stop_reason, StopReason::kDeadline);
}

}  // namespace
}  // namespace isum::core
