// Empirical validation of the paper's §4.3/§5 theory: the benefit of a set
// of queries (Definitions 7–9, computed exactly by enumerating selection
// orders) and the greedy algorithm's approximation quality relative to the
// brute-force optimum (the (1 - 1/e) ≈ 0.63 bound of §5.1).

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/allpairs.h"
#include "core/benefit.h"
#include "workload/workload_factory.h"

namespace isum::core {
namespace {

constexpr UpdateStrategy kStrategy = UpdateStrategy::kUtilityAndFeatureZero;

/// Exact benefit of one order π(Q): U(Q) (original utilities) plus the
/// cumulative conditional influence over queries outside Q (Definition 8).
double SequenceBenefit(const workload::Workload& w,
                       const std::vector<size_t>& order) {
  CompressionState state(w, {}, UtilityMode::kCostOnly);
  double utility_q = 0.0;
  for (size_t q : order) utility_q += state.original_utility(q);

  std::vector<bool> in_q(w.size(), false);
  for (size_t q : order) in_q[q] = true;

  double influence = 0.0;
  for (size_t q : order) {
    for (size_t other = 0; other < w.size(); ++other) {
      if (in_q[other]) continue;  // Def 8 sums over q' outside Q
      influence += Influence(state, q, other);
    }
    state.SelectAndUpdate(q, kStrategy);
  }
  return utility_q + influence;
}

/// B(Q) = max over all orders (Definition 9). |Q| <= 4 keeps this exact.
double SetBenefit(const workload::Workload& w, std::vector<size_t> q) {
  std::sort(q.begin(), q.end());
  double best = 0.0;
  do {
    best = std::max(best, SequenceBenefit(w, q));
  } while (std::next_permutation(q.begin(), q.end()));
  return best;
}

class TheoryTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  workload::GeneratedWorkload MakeSmall(uint64_t seed) {
    workload::GeneratorOptions gen;
    gen.seed = seed;
    gen.instances_per_template = 1;
    gen.max_templates = 9;  // C(9,3)=84 subsets x 6 orders: exact is cheap
    return workload::MakeTpch(gen);
  }
};

TEST_P(TheoryTest, GreedyWithinSubmodularBoundOfOptimum) {
  workload::GeneratedWorkload env = MakeSmall(GetParam());
  const workload::Workload& w = *env.workload;
  const size_t n = w.size();
  const size_t k = 3;

  // Brute-force optimum of B over all k-subsets.
  double optimum = 0.0;
  std::vector<size_t> best_set;
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      for (size_t c = b + 1; c < n; ++c) {
        const double benefit = SetBenefit(w, {a, b, c});
        if (benefit > optimum) {
          optimum = benefit;
          best_set = {a, b, c};
        }
      }
    }
  }
  ASSERT_GT(optimum, 0.0);

  // Greedy (Algorithms 1–2) on the same instance.
  CompressionState state(w, {}, UtilityMode::kCostOnly);
  const SelectionResult greedy = AllPairsGreedySelect(state, k, kStrategy);
  const double greedy_benefit = SetBenefit(w, greedy.selected);

  // §5.1: worst-case (1 - 1/e) ≈ 0.632 under the stated conditions. The
  // conditions are "mild" but not guaranteed; empirically the greedy should
  // clear the bound comfortably on these instances.
  EXPECT_GE(greedy_benefit, 0.632 * optimum)
      << "greedy " << greedy_benefit << " vs optimum " << optimum;
}

TEST_P(TheoryTest, GreedyFirstPickIsSingletonOptimum) {
  // For k = 1 the greedy is exactly optimal by construction.
  workload::GeneratedWorkload env = MakeSmall(GetParam() ^ 0xABCD);
  const workload::Workload& w = *env.workload;
  CompressionState state(w, {}, UtilityMode::kCostOnly);
  const SelectionResult greedy = AllPairsGreedySelect(state, 1, kStrategy);
  double best = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    best = std::max(best, SetBenefit(w, {i}));
  }
  EXPECT_NEAR(SetBenefit(w, greedy.selected), best, best * 1e-9);
}

TEST_P(TheoryTest, BenefitMonotoneUnderExtension) {
  // Theorem 1's conclusion on these instances: adding a query to a set
  // does not decrease B (utility gain offsets influence loss here because
  // utilities are nonnegative and feature-zeroing only moves influence
  // into utility-covered mass).
  workload::GeneratedWorkload env = MakeSmall(GetParam() ^ 0x5EED);
  const workload::Workload& w = *env.workload;
  Rng rng(GetParam());
  int violations = 0, checks = 0;
  for (int trial = 0; trial < 12; ++trial) {
    auto x = rng.SampleWithoutReplacement(w.size(), 2);
    size_t z = 0;
    do {
      z = rng.NextUint64(w.size());
    } while (z == x[0] || z == x[1]);
    const double bx = SetBenefit(w, {x[0], x[1]});
    const double bxz = SetBenefit(w, {x[0], x[1], z});
    ++checks;
    if (bxz < bx - 1e-9) ++violations;
  }
  // Theorem 1 is conditional; allow rare violations but expect the trend.
  EXPECT_LE(violations * 5, checks) << violations << "/" << checks;
}

TEST_P(TheoryTest, MarginalGainsDiminishOnAverage) {
  // Theorem 2 (submodularity) empirically: the greedy's conditional
  // benefits trend downward across rounds.
  workload::GeneratedWorkload env = MakeSmall(GetParam() ^ 0x7777);
  const workload::Workload& w = *env.workload;
  CompressionState state(w, {}, UtilityMode::kCostOnly);
  const SelectionResult greedy = AllPairsGreedySelect(state, 6, kStrategy);
  ASSERT_GE(greedy.selection_benefits.size(), 4u);
  const auto& b = greedy.selection_benefits;
  const double early = b[0] + b[1];
  const double late = b[b.size() - 2] + b[b.size() - 1];
  EXPECT_GE(early, late * 0.99);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoryTest, ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace isum::core
