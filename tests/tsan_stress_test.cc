// Race-hunting stress tests, written to be run under
// -DISUM_SANITIZE=thread (the CI `tsan` job) but cheap enough to stay in the
// default suite. They hammer the two concurrency primitives the library's
// determinism story rests on: ThreadPool::ParallelFor and the sharded
// what-if cost cache.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "catalog/schema_builder.h"
#include "common/thread_pool.h"
#include "engine/what_if.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "stats/data_generator.h"

namespace isum {
namespace {

TEST(ThreadPoolStress, ManySmallBatchesBackToBack) {
  ThreadPool pool(8);
  std::atomic<uint64_t> sum{0};
  for (int batch = 0; batch < 200; ++batch) {
    pool.ParallelFor(64, [&](size_t i) { sum.fetch_add(i + 1); });
  }
  EXPECT_EQ(sum.load(), 200ull * 64 * 65 / 2);
}

TEST(ThreadPoolStress, IndependentPoolsRunConcurrently) {
  // Distinct pools must not share batch state; drive four of them from four
  // client threads at once.
  constexpr int kPools = 4;
  std::vector<std::thread> clients;
  std::atomic<uint64_t> grand_total{0};
  for (int p = 0; p < kPools; ++p) {
    clients.emplace_back([&] {
      ThreadPool pool(3);
      uint64_t local = 0;
      std::vector<uint64_t> slots(500);
      for (int batch = 0; batch < 20; ++batch) {
        pool.ParallelFor(slots.size(),
                         [&](size_t i) { slots[i] = i * i; });
        for (uint64_t v : slots) local += v;
      }
      grand_total.fetch_add(local);
    });
  }
  for (auto& t : clients) t.join();
  uint64_t expected_one = 0;
  for (uint64_t i = 0; i < 500; ++i) expected_one += i * i;
  EXPECT_EQ(grand_total.load(), expected_one * 20 * kPools);
}

TEST(ThreadPoolStress, WriteToDisjointSlotsWithoutAtomics) {
  // ParallelFor's completion handshake must publish plain (non-atomic)
  // writes made by workers; TSan verifies the happens-before edge.
  ThreadPool pool(8);
  std::vector<double> slots(10'000);
  pool.ParallelFor(slots.size(),
                   [&](size_t i) { slots[i] = static_cast<double>(i) * 0.5; });
  double sum = 0;
  for (double v : slots) sum += v;
  EXPECT_DOUBLE_EQ(sum, 0.5 * (10'000.0 - 1) * 10'000.0 / 2);
}

class WhatIfStressTest : public ::testing::Test {
 protected:
  WhatIfStressTest() : stats_(&cat_), cost_model_(&cat_, &stats_) {
    catalog::SchemaBuilder b(&cat_);
    b.Table("t", 5'000'000)
        .Key("id", catalog::ColumnType::kInt)
        .Col("a", catalog::ColumnType::kInt)
        .Col("b", catalog::ColumnType::kInt);
    stats::DataGenerator dg;
    Rng rng(7);
    auto uniform = [&](const char* c, uint64_t distinct, double hi) {
      stats::ColumnDataSpec spec;
      spec.distribution = stats::Distribution::kUniform;
      spec.distinct = distinct;
      spec.domain_min = 0;
      spec.domain_max = hi;
      const catalog::ColumnId id = cat_.ResolveColumn("t", c);
      stats_.SetStats(id,
                      dg.Generate(spec, cat_.table(id.table).row_count(), rng));
    };
    stats::ColumnDataSpec key_spec;
    key_spec.distribution = stats::Distribution::kKey;
    const catalog::ColumnId id = cat_.ResolveColumn("t", "id");
    stats_.SetStats(
        id, dg.Generate(key_spec, cat_.table(id.table).row_count(), rng));
    uniform("a", 100'000, 100'000);
    uniform("b", 1'000, 1'000);
  }

  sql::BoundQuery Bind(const std::string& sql) {
    auto stmt = sql::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    sql::Binder binder(&cat_, &stats_);
    auto bound = binder.Bind(*stmt, sql);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return std::move(bound).value();
  }

  catalog::Catalog cat_;
  stats::StatsManager stats_;
  engine::CostModel cost_model_;
};

TEST_F(WhatIfStressTest, ConcurrentCostingIsRaceFreeAndConsistent) {
  std::vector<sql::BoundQuery> queries;
  queries.push_back(Bind("SELECT a FROM t WHERE a < 100"));
  queries.push_back(Bind("SELECT b FROM t WHERE b = 5"));
  queries.push_back(Bind("SELECT a, b FROM t WHERE a < 500 AND b = 9"));

  std::vector<engine::Configuration> configs;
  configs.emplace_back();  // empty
  engine::Configuration c1;
  c1.Add(engine::Index(0, {cat_.ResolveColumn("t", "a")}));
  configs.push_back(c1);
  engine::Configuration c2;
  c2.Add(engine::Index(0, {cat_.ResolveColumn("t", "b")},
                       {cat_.ResolveColumn("t", "a")}));
  configs.push_back(c2);

  engine::WhatIfOptimizer what_if(&cost_model_);

  // Reference costs, computed single-threaded.
  std::vector<double> reference;
  for (const auto& q : queries) {
    for (const auto& c : configs) reference.push_back(what_if.Cost(q, c));
  }
  what_if.ClearCache();
  what_if.ResetCounters();

  // 8 threads repeatedly cost every (query, config) pair while the cache is
  // concurrently warm/cold; every observed cost must equal the reference.
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          for (size_t ci = 0; ci < configs.size(); ++ci) {
            const double got = what_if.Cost(queries[qi], configs[ci]);
            if (got != reference[qi * configs.size() + ci]) {
              mismatches.fetch_add(1);
            }
          }
        }
        // One thread periodically clears the cache to force concurrent
        // miss/insert/clear interleavings.
        if (t == 0 && round % 10 == 9) what_if.ClearCache();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(what_if.optimizer_calls(), 0u);
}

TEST_F(WhatIfStressTest, ResetCountersZeroesEveryCounter) {
  const sql::BoundQuery q = Bind("SELECT a FROM t WHERE a < 100");
  engine::WhatIfOptimizer what_if(&cost_model_);
  what_if.Cost(q, engine::Configuration());
  what_if.Cost(q, engine::Configuration());  // second call is a cache hit
  EXPECT_EQ(what_if.optimizer_calls(), 1u);
  EXPECT_EQ(what_if.cache_hits(), 1u);
  EXPECT_GE(what_if.optimizer_seconds(), 0.0);

  // ResetCounters requires quiesced callers (see what_if.h); here the test
  // thread is the only caller, so the reset must be exact.
  what_if.ResetCounters();
  EXPECT_EQ(what_if.optimizer_calls(), 0u);
  EXPECT_EQ(what_if.cache_hits(), 0u);
  EXPECT_EQ(what_if.optimizer_seconds(), 0.0);

  what_if.Cost(q, engine::Configuration());  // warm cache -> pure hit
  EXPECT_EQ(what_if.optimizer_calls(), 0u);
  EXPECT_EQ(what_if.cache_hits(), 1u);
}

TEST_F(WhatIfStressTest, CountersStayExactUnderConcurrency) {
  // Every Cost() invocation increments exactly one of {optimizer_calls,
  // cache_hits}, so their sum must equal the number of invocations even
  // when threads race on the same cold cache entry.
  std::vector<sql::BoundQuery> queries;
  queries.push_back(Bind("SELECT a FROM t WHERE a < 100"));
  queries.push_back(Bind("SELECT b FROM t WHERE b = 5"));
  engine::WhatIfOptimizer what_if(&cost_model_);
  constexpr int kThreads = 8;
  constexpr int kRounds = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& q : queries) {
          what_if.Cost(q, engine::Configuration());
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(what_if.optimizer_calls() + what_if.cache_hits(),
            static_cast<uint64_t>(kThreads) * kRounds * queries.size());
}

}  // namespace
}  // namespace isum
