// Unit + property tests for the feature machinery: FeatureSpace,
// SparseVector operations, and the Jaccard similarity measures.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/features.h"

namespace isum::core {
namespace {

TEST(FeatureSpace, InterningIsStable) {
  FeatureSpace space;
  const catalog::ColumnId a{0, 1}, b{0, 2};
  const int ia = space.GetOrCreate(a);
  const int ib = space.GetOrCreate(b);
  EXPECT_NE(ia, ib);
  EXPECT_EQ(space.GetOrCreate(a), ia);
  EXPECT_EQ(space.Find(a), ia);
  EXPECT_EQ(space.Find(catalog::ColumnId{9, 9}), -1);
  EXPECT_EQ(space.column(ib), b);
  EXPECT_EQ(space.size(), 2u);
}

TEST(SparseVector, FromPairsSortsAndMergesDuplicates) {
  SparseVector v = SparseVector::FromPairs({{3, 1.0}, {1, 2.0}, {3, 0.5}});
  ASSERT_EQ(v.nnz(), 2u);
  EXPECT_DOUBLE_EQ(v.Get(1), 2.0);
  EXPECT_DOUBLE_EQ(v.Get(3), 1.5);
  EXPECT_DOUBLE_EQ(v.Get(2), 0.0);
}

TEST(SparseVector, SetInsertOverwriteErase) {
  SparseVector v;
  v.Set(5, 1.0);
  v.Set(2, 3.0);
  EXPECT_DOUBLE_EQ(v.Get(5), 1.0);
  v.Set(5, 2.0);
  EXPECT_DOUBLE_EQ(v.Get(5), 2.0);
  v.Set(5, 0.0);
  EXPECT_EQ(v.nnz(), 1u);
}

TEST(SparseVector, AddScaledUnionsSupports) {
  SparseVector a = SparseVector::FromPairs({{1, 1.0}, {3, 2.0}});
  SparseVector b = SparseVector::FromPairs({{2, 5.0}, {3, 1.0}});
  a.AddScaled(b, 2.0);
  EXPECT_DOUBLE_EQ(a.Get(1), 1.0);
  EXPECT_DOUBLE_EQ(a.Get(2), 10.0);
  EXPECT_DOUBLE_EQ(a.Get(3), 4.0);
}

TEST(SparseVector, SubtractScaledClampsAtZero) {
  SparseVector a = SparseVector::FromPairs({{1, 1.0}, {2, 5.0}});
  SparseVector b = SparseVector::FromPairs({{1, 10.0}, {2, 1.0}});
  a.SubtractScaledClamped(b, 1.0);
  EXPECT_DOUBLE_EQ(a.Get(1), 0.0);
  EXPECT_DOUBLE_EQ(a.Get(2), 4.0);
}

TEST(SparseVector, SubtractFromAllClamped) {
  SparseVector a = SparseVector::FromPairs({{1, 0.3}, {2, 0.9}});
  a.SubtractFromAllClamped(0.5);
  EXPECT_DOUBLE_EQ(a.Get(1), 0.0);
  EXPECT_NEAR(a.Get(2), 0.4, 1e-12);
}

TEST(SparseVector, ZeroWhereMasksSharedFeatures) {
  SparseVector a = SparseVector::FromPairs({{1, 1.0}, {2, 2.0}, {3, 3.0}});
  SparseVector mask = SparseVector::FromPairs({{2, 0.7}, {4, 1.0}});
  a.ZeroWhere(mask);
  EXPECT_DOUBLE_EQ(a.Get(1), 1.0);
  EXPECT_DOUBLE_EQ(a.Get(2), 0.0);
  EXPECT_DOUBLE_EQ(a.Get(3), 3.0);
  EXPECT_FALSE(a.AllZero());
}

TEST(SparseVector, AllZeroAndPrune) {
  SparseVector a = SparseVector::FromPairs({{1, 1.0}});
  a.Set(1, 0.0);
  EXPECT_TRUE(a.AllZero());
  SparseVector b = SparseVector::FromPairs({{1, 1.0}, {2, 2.0}});
  b.ZeroWhere(SparseVector::FromPairs({{1, 1.0}}));
  EXPECT_EQ(b.nnz(), 2u);
  b.Prune();
  EXPECT_EQ(b.nnz(), 1u);
}

TEST(SparseVector, SumAndMax) {
  SparseVector a = SparseVector::FromPairs({{1, 1.5}, {2, 2.5}});
  EXPECT_DOUBLE_EQ(a.Sum(), 4.0);
  EXPECT_DOUBLE_EQ(a.MaxWeight(), 2.5);
  EXPECT_DOUBLE_EQ(SparseVector().Sum(), 0.0);
}

// --- Weighted Jaccard (the paper's similarity, §4.2). ---

TEST(WeightedJaccard, IdenticalVectorsGiveOne) {
  SparseVector a = SparseVector::FromPairs({{1, 0.5}, {7, 1.0}});
  EXPECT_DOUBLE_EQ(WeightedJaccard(a, a), 1.0);
}

TEST(WeightedJaccard, DisjointVectorsGiveZero) {
  SparseVector a = SparseVector::FromPairs({{1, 1.0}});
  SparseVector b = SparseVector::FromPairs({{2, 1.0}});
  EXPECT_DOUBLE_EQ(WeightedJaccard(a, b), 0.0);
  EXPECT_DOUBLE_EQ(WeightedJaccard(SparseVector(), SparseVector()), 0.0);
}

TEST(WeightedJaccard, HandComputedExample) {
  SparseVector a = SparseVector::FromPairs({{1, 0.4}, {2, 0.6}});
  SparseVector b = SparseVector::FromPairs({{2, 0.3}, {3, 0.5}});
  // min: 0 + 0.3 + 0 = 0.3; max: 0.4 + 0.6 + 0.5 = 1.5.
  EXPECT_NEAR(WeightedJaccard(a, b), 0.3 / 1.5, 1e-12);
}

TEST(BinaryJaccard, CountsSupportOverlap) {
  SparseVector a = SparseVector::FromPairs({{1, 0.9}, {2, 0.1}, {3, 0.5}});
  SparseVector b = SparseVector::FromPairs({{2, 123.0}, {3, 4.0}, {4, 1.0}});
  EXPECT_NEAR(BinaryJaccard(a, b), 2.0 / 4.0, 1e-12);
}

TEST(BinaryJaccard, IgnoresZeroWeightEntries) {
  SparseVector a = SparseVector::FromPairs({{1, 1.0}, {2, 1.0}});
  a.ZeroWhere(SparseVector::FromPairs({{2, 1.0}}));  // 2 present but zero
  SparseVector b = SparseVector::FromPairs({{2, 1.0}});
  EXPECT_DOUBLE_EQ(BinaryJaccard(a, b), 0.0);
}

// --- Property sweep over random vectors. ---

class JaccardProperties : public ::testing::TestWithParam<uint64_t> {};

SparseVector RandomVector(Rng& rng, int max_features) {
  std::vector<SparseVector::Entry> entries;
  const int nnz = 1 + static_cast<int>(rng.NextUint64(max_features));
  for (int i = 0; i < nnz; ++i) {
    entries.push_back({static_cast<int>(rng.NextUint64(max_features * 2)),
                       rng.NextDouble(0.01, 2.0)});
  }
  return SparseVector::FromPairs(std::move(entries));
}

TEST_P(JaccardProperties, BoundsSymmetryIdentity) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    SparseVector a = RandomVector(rng, 20);
    SparseVector b = RandomVector(rng, 20);
    const double sab = WeightedJaccard(a, b);
    EXPECT_GE(sab, 0.0);
    EXPECT_LE(sab, 1.0);
    EXPECT_DOUBLE_EQ(sab, WeightedJaccard(b, a));          // symmetry
    EXPECT_DOUBLE_EQ(WeightedJaccard(a, a), 1.0);          // identity
    // Binary Jaccard dominates nothing in general but shares bounds.
    const double bj = BinaryJaccard(a, b);
    EXPECT_GE(bj, 0.0);
    EXPECT_LE(bj, 1.0);
  }
}

TEST_P(JaccardProperties, ScalingBothPreservesSimilarity) {
  Rng rng(GetParam() ^ 0xBEEF);
  for (int trial = 0; trial < 20; ++trial) {
    SparseVector a = RandomVector(rng, 16);
    SparseVector b = RandomVector(rng, 16);
    const double before = WeightedJaccard(a, b);
    a.Scale(3.0);
    b.Scale(3.0);
    EXPECT_NEAR(WeightedJaccard(a, b), before, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JaccardProperties,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- Batched kernels vs. the SparseVector reference implementations. ---

class BatchKernels : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchKernels, VsDenseMatchesSortedMerge) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    SparseVector q = RandomVector(rng, 24);
    SparseVector row = RandomVector(rng, 24);
    DenseScratch scratch;
    scratch.Scatter(q);
    EXPECT_NEAR(WeightedJaccardVsDense(scratch, row), WeightedJaccard(q, row),
                1e-12);
    EXPECT_NEAR(BinaryJaccardVsDense(scratch, row), BinaryJaccard(q, row),
                1e-12);
    // Self-similarity must stay exactly 1 through the dense path.
    scratch.Scatter(row);
    EXPECT_DOUBLE_EQ(WeightedJaccardVsDense(scratch, row), 1.0);
  }
}

TEST_P(BatchKernels, FeatureMatrixMatchesPairwiseLoops) {
  Rng rng(GetParam() ^ 0xFACE);
  constexpr int kMaxFeature = 24;
  std::vector<SparseVector> rows;
  for (int i = 0; i < 40; ++i) rows.push_back(RandomVector(rng, kMaxFeature));
  const FeatureMatrix matrix =
      FeatureMatrix::FromVectors(rows, kMaxFeature * 2);
  ASSERT_EQ(matrix.rows(), rows.size());

  DenseScratch scratch;
  std::vector<double> weighted(rows.size()), binary(rows.size());
  for (size_t q = 0; q < rows.size(); ++q) {
    matrix.ScatterRow(q, &scratch);
    EXPECT_NEAR(scratch.sum(), rows[q].Sum(), 1e-12);
    matrix.WeightedJaccardBatch(scratch, 0, rows.size(), weighted.data());
    matrix.BinaryJaccardBatch(scratch, 0, rows.size(), binary.data());
    for (size_t r = 0; r < rows.size(); ++r) {
      EXPECT_NEAR(weighted[r], WeightedJaccard(rows[q], rows[r]), 1e-12)
          << "q=" << q << " r=" << r;
      EXPECT_NEAR(binary[r], BinaryJaccard(rows[q], rows[r]), 1e-12)
          << "q=" << q << " r=" << r;
    }
    EXPECT_DOUBLE_EQ(weighted[q], 1.0);
  }
}

TEST_P(BatchKernels, KernelsIgnoreExplicitZeroEntries) {
  Rng rng(GetParam() ^ 0xD00D);
  for (int trial = 0; trial < 20; ++trial) {
    SparseVector q = RandomVector(rng, 16);
    SparseVector row = RandomVector(rng, 16);
    const double expected_w = WeightedJaccard(q, row);
    const double expected_b = BinaryJaccard(q, row);
    // ZeroWhere against an empty-support mask keeps weights; Set() the
    // other way: inject explicit zeros into the row.
    SparseVector padded = row;
    padded.AddScaled(q, 0.0);  // adds q's support with weight 0
    DenseScratch scratch;
    scratch.Scatter(q);
    EXPECT_NEAR(WeightedJaccardVsDense(scratch, padded), expected_w, 1e-12);
    EXPECT_NEAR(BinaryJaccardVsDense(scratch, padded), expected_b, 1e-12);
  }
}

TEST(AddScaledScratch, MatchesAllocatingOverload) {
  Rng rng(99);
  SparseVector a = RandomVector(rng, 20);
  SparseVector b = a;
  std::vector<SparseVector::Entry> scratch;
  for (int i = 0; i < 10; ++i) {
    const SparseVector v = RandomVector(rng, 20);
    const double scale = rng.NextDouble(0.1, 2.0);
    a.AddScaled(v, scale);
    b.AddScaled(v, scale, &scratch);
    ASSERT_EQ(a.nnz(), b.nnz());
    for (size_t e = 0; e < a.nnz(); ++e) {
      EXPECT_EQ(a.entries()[e].feature, b.entries()[e].feature);
      EXPECT_EQ(a.entries()[e].weight, b.entries()[e].weight);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchKernels,
                         ::testing::Values(7u, 8u, 9u, 10u, 11u));

}  // namespace
}  // namespace isum::core
