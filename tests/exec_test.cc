// Tests for the execution substrate (materialization, index lookups, plan
// execution) and its calibration properties against the cost model.

#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "common/math_util.h"
#include "advisor/advisor.h"
#include "engine/what_if.h"
#include "exec/executor.h"
#include "workload/workload_factory.h"

namespace isum::exec {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 1;
    gen.scale = 0.002;  // tiny fact tables for execution
    env_ = workload::MakeTpch(gen);
    db_.emplace(env_->catalog.get(), env_->stats.get());
    db_->MaterializeAll(/*max_rows_per_table=*/20'000, /*seed=*/5);
  }

  const workload::Workload& W() { return *env_->workload; }

  engine::PlanSummary PlanOf(size_t i, const engine::Configuration& config) {
    engine::Optimizer opt(env_->cost_model.get());
    return opt.Optimize(W().query(i).bound, config);
  }

  std::optional<workload::GeneratedWorkload> env_;
  std::optional<Database> db_;
};

TEST_F(ExecTest, MaterializationMatchesCatalogShapes) {
  for (size_t t = 0; t < env_->catalog->num_tables(); ++t) {
    const catalog::TableId id = static_cast<catalog::TableId>(t);
    const TableData& data = db_->table(id);
    const catalog::Table& meta = env_->catalog->table(id);
    EXPECT_EQ(data.num_columns(), meta.columns().size());
    EXPECT_EQ(data.num_rows(), std::min<uint64_t>(20'000, meta.row_count()));
  }
}

TEST_F(ExecTest, KeyColumnsAreDenseUnique) {
  const catalog::Table* nation = env_->catalog->FindTable("nation");
  const TableData& data = db_->table(nation->id());
  std::set<double> values;
  for (size_t r = 0; r < data.num_rows(); ++r) values.insert(data.Value(0, r));
  EXPECT_EQ(values.size(), data.num_rows());
  EXPECT_EQ(*values.begin(), 1.0);
  EXPECT_EQ(*values.rbegin(), static_cast<double>(data.num_rows()));
}

TEST_F(ExecTest, MaterializedSelectivityTracksStatistics) {
  // Fraction of lineitem rows with l_shipdate <= median should be ~50%.
  const catalog::Table* lineitem = env_->catalog->FindTable("lineitem");
  const catalog::ColumnId shipdate =
      env_->catalog->ResolveColumn("lineitem", "l_shipdate");
  const double median = env_->stats->ValueAtQuantile(shipdate, 0.5);
  const TableData& data = db_->table(lineitem->id());
  size_t below = 0;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    below += (data.Value(shipdate.column, r) <= median);
  }
  EXPECT_NEAR(static_cast<double>(below) / data.num_rows(), 0.5, 0.06);
}

TEST_F(ExecTest, IndexLookupMatchesLinearScan) {
  const catalog::Table* orders = env_->catalog->FindTable("orders");
  const catalog::ColumnId odate =
      env_->catalog->ResolveColumn("orders", "o_orderdate");
  engine::Index index(orders->id(), {odate});
  const IndexData& idx = db_->GetIndex(index);
  const TableData& data = db_->table(orders->id());

  const double lo = env_->stats->ValueAtQuantile(odate, 0.3);
  const double hi = env_->stats->ValueAtQuantile(odate, 0.4);
  uint64_t touched = 0;
  const std::vector<uint32_t> via_index = idx.LookupRange(lo, hi, &touched);
  size_t via_scan = 0;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    const double v = data.Value(odate.column, r);
    via_scan += (v >= lo && v <= hi);
  }
  EXPECT_EQ(via_index.size(), via_scan);
  EXPECT_GT(touched, 0u);
  EXPECT_LT(touched, data.num_rows());  // seek touched far fewer than all
}

TEST_F(ExecTest, ExecutionOutputTracksEstimatedCardinality) {
  Executor executor(&*db_);
  int within = 0, total = 0;
  for (size_t i = 0; i < W().size(); ++i) {
    const engine::PlanSummary plan = PlanOf(i, engine::Configuration());
    const ExecutionResult run = executor.Execute(W().query(i).bound, plan);
    if (run.truncated) continue;
    ++total;
    // Loose band: estimates within ~30x of executed output for most queries
    // (estimation error compounds across joins).
    const double est = std::max(1.0, plan.output_rows);
    const double act = std::max(1.0, run.output_rows);
    if (est / act < 30.0 && act / est < 30.0) ++within;
  }
  EXPECT_GT(total, 15);
  EXPECT_GT(within * 10, total * 6);  // >60%
}

TEST_F(ExecTest, EstimatedCostCorrelatesWithExecutedWork) {
  Executor executor(&*db_);
  std::vector<double> est_cost, work;
  for (size_t i = 0; i < W().size(); ++i) {
    const engine::PlanSummary plan = PlanOf(i, engine::Configuration());
    const ExecutionResult run = executor.Execute(W().query(i).bound, plan);
    if (run.truncated) continue;
    est_cost.push_back(plan.total_cost);
    work.push_back(static_cast<double>(run.row_ops));
  }
  // Rank correlation: cheap queries execute less work, expensive ones more.
  EXPECT_GT(SpearmanCorrelation(est_cost, work), 0.55);
}

TEST_F(ExecTest, IndexSeekExecutesLessWorkThanScan) {
  // Find a single-table query with a selective sargable filter and compare
  // executed work with and without its best index.
  Executor executor(&*db_);
  advisor::TuningOptions unused;
  (void)unused;
  int checked = 0;
  for (size_t i = 0; i < W().size() && checked < 4; ++i) {
    const sql::BoundQuery& q = W().query(i).bound;
    if (q.tables.size() != 1 || q.filters.empty()) continue;

    const engine::PlanSummary scan_plan = PlanOf(i, engine::Configuration());
    // Index on the most selective sargable filter column.
    const sql::FilterPredicate* best = nullptr;
    for (const auto& f : q.filters) {
      if (f.sargable && (best == nullptr || f.selectivity < best->selectivity)) {
        best = &f;
      }
    }
    if (best == nullptr || best->selectivity > 0.5) continue;
    // A covering index (all referenced columns included) so the optimizer
    // can accept the seek even at moderate selectivity.
    std::vector<catalog::ColumnId> includes;
    for (catalog::ColumnId c : q.ReferencedColumns()) {
      if (c != best->column) includes.push_back(c);
    }
    engine::Configuration config;
    config.Add(engine::Index(best->column.table, {best->column}, includes));
    const engine::PlanSummary seek_plan = PlanOf(i, config);
    if (seek_plan.tables[0].access.index == nullptr) continue;

    const uint64_t scan_work =
        executor.Execute(q, scan_plan).row_ops;
    const uint64_t seek_work = executor.Execute(q, seek_plan).row_ops;
    EXPECT_LT(seek_work, scan_work) << W().query(i).sql;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(ExecTest, RecommendedConfigurationReducesExecutedWork) {
  // The advisor's recommendation must reduce *executed* total work, not
  // just estimated cost — the end-to-end calibration claim.
  std::vector<advisor::WeightedQuery> queries;
  for (size_t i = 0; i < W().size(); ++i) {
    queries.push_back({&W().query(i).bound, 1.0});
  }
  advisor::TuningOptions options;
  options.max_indexes = 12;
  advisor::DtaStyleAdvisor advisor(env_->cost_model.get());
  const advisor::TuningResult tuned = advisor.Tune(queries, options);
  ASSERT_GT(tuned.configuration.size(), 0u);

  Executor executor(&*db_);
  uint64_t before = 0, after = 0;
  for (size_t i = 0; i < W().size(); ++i) {
    const ExecutionResult base =
        executor.Execute(W().query(i).bound, PlanOf(i, engine::Configuration()));
    const ExecutionResult opt =
        executor.Execute(W().query(i).bound, PlanOf(i, tuned.configuration));
    if (base.truncated || opt.truncated) continue;
    before += base.row_ops;
    after += opt.row_ops;
  }
  EXPECT_LT(after, before);
}

TEST_F(ExecTest, ExecutionIsDeterministic) {
  Executor executor(&*db_);
  const engine::PlanSummary plan = PlanOf(3, engine::Configuration());
  const ExecutionResult a = executor.Execute(W().query(3).bound, plan);
  const ExecutionResult b = executor.Execute(W().query(3).bound, plan);
  EXPECT_EQ(a.row_ops, b.row_ops);
  EXPECT_EQ(a.output_rows, b.output_rows);
}

}  // namespace
}  // namespace isum::exec
