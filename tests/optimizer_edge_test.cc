// Edge-case tests for the optimizer: disconnected join graphs, self-joins,
// DISTINCT, LIMIT interactions, residual predicates, group estimation.

#include <gtest/gtest.h>

#include "catalog/schema_builder.h"
#include "engine/optimizer.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "stats/data_generator.h"

namespace isum::engine {
namespace {

class OptimizerEdgeTest : public ::testing::Test {
 protected:
  OptimizerEdgeTest() : stats_(&cat_), cost_model_(&cat_, &stats_) {
    catalog::SchemaBuilder b(&cat_);
    b.Table("t1", 100'000)
        .Key("a", catalog::ColumnType::kInt)
        .Col("b", catalog::ColumnType::kInt)
        .Col("c", catalog::ColumnType::kInt);
    b.Table("t2", 50'000)
        .Key("x", catalog::ColumnType::kInt)
        .Col("y", catalog::ColumnType::kInt);
    b.Table("t3", 1'000)
        .Key("p", catalog::ColumnType::kInt)
        .Col("q", catalog::ColumnType::kInt);
    stats::DataGenerator dg;
    Rng rng(1);
    for (const char* t : {"t1", "t2", "t3"}) {
      const catalog::Table* table = cat_.FindTable(t);
      for (const catalog::Column& col : table->columns()) {
        stats::ColumnDataSpec spec;
        spec.distribution = col.is_key ? stats::Distribution::kKey
                                       : stats::Distribution::kUniform;
        spec.distinct = 100;
        spec.domain_min = 0;
        spec.domain_max = 100;
        stats_.SetStats(catalog::ColumnId{table->id(), col.ordinal},
                        dg.Generate(spec, table->row_count(), rng));
      }
    }
  }

  sql::BoundQuery Bind(const std::string& sql) {
    auto stmt = sql::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    sql::Binder binder(&cat_, &stats_);
    auto bound = binder.Bind(*stmt, sql);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return std::move(bound).value();
  }

  PlanSummary Plan(const std::string& sql) {
    sql::BoundQuery q = Bind(sql);
    Optimizer opt(&cost_model_);
    return opt.Optimize(q, Configuration());
  }

  catalog::Catalog cat_;
  stats::StatsManager stats_;
  CostModel cost_model_;
};

TEST_F(OptimizerEdgeTest, DisconnectedTablesCrossJoin) {
  PlanSummary plan = Plan("SELECT t1.b, t2.y FROM t1, t2 WHERE t1.b = 3");
  ASSERT_EQ(plan.tables.size(), 2u);
  EXPECT_EQ(plan.tables[1].join_method, JoinMethod::kCrossJoin);
  // Output is the product of both filtered sides.
  EXPECT_GT(plan.output_rows, 1000.0);
}

TEST_F(OptimizerEdgeTest, PartiallyConnectedGraphHasExactlyOneCrossJoin) {
  // t1-t2 joined; t3 dangling: exactly one cross join, and the connected
  // pair still joins via hash (never cross).
  PlanSummary plan = Plan(
      "SELECT COUNT(*) FROM t1, t2, t3 WHERE t1.b = t2.x");
  ASSERT_EQ(plan.tables.size(), 3u);
  int cross = 0, hash = 0;
  for (const PlannedTable& pt : plan.tables) {
    cross += (pt.join_method == JoinMethod::kCrossJoin);
    hash += (pt.join_method == JoinMethod::kHashJoin);
  }
  EXPECT_EQ(cross, 1);
  EXPECT_EQ(hash, 1);
}

TEST_F(OptimizerEdgeTest, SelfJoinAliasesFoldToOneTable) {
  // Our single-block model folds self-joins onto one table instance.
  PlanSummary plan =
      Plan("SELECT a.b FROM t1 a, t1 b2 WHERE a.b = 5 AND b2.c = 7");
  EXPECT_EQ(plan.tables.size(), 1u);
  EXPECT_GT(plan.total_cost, 0.0);
}

TEST_F(OptimizerEdgeTest, DistinctAddsAggregationCost) {
  PlanSummary with = Plan("SELECT DISTINCT b FROM t1");
  PlanSummary without = Plan("SELECT b FROM t1");
  EXPECT_GT(with.total_cost, without.total_cost);
  EXPECT_LE(with.output_rows, 101.0);  // b has ~100 distinct values
}

TEST_F(OptimizerEdgeTest, GroupCountCappedByInputRows) {
  PlanSummary plan = Plan(
      "SELECT b, c, COUNT(*) FROM t1 WHERE b = 1 GROUP BY b, c");
  // Groups cannot exceed the filtered input cardinality.
  EXPECT_LE(plan.output_rows, 100'000.0 * 0.02);
}

TEST_F(OptimizerEdgeTest, LimitCapsOutputRows) {
  PlanSummary plan = Plan("SELECT b FROM t1 LIMIT 5");
  EXPECT_LE(plan.output_rows, 5.0);
}

TEST_F(OptimizerEdgeTest, TopNSortCheaperThanFullSort) {
  PlanSummary top_n = Plan("SELECT b FROM t1 ORDER BY b LIMIT 5");
  PlanSummary full = Plan("SELECT b FROM t1 ORDER BY b");
  EXPECT_TRUE(top_n.sort_needed);
  EXPECT_LT(top_n.sort_cost, full.sort_cost);
}

TEST_F(OptimizerEdgeTest, ResidualPredicateEvaluatedAfterJoins) {
  // Without downstream operators the residual only adds evaluation CPU...
  PlanSummary with = Plan(
      "SELECT t1.b FROM t1, t2 WHERE t1.b = t2.x AND t1.c + t2.y > 50");
  PlanSummary without = Plan("SELECT t1.b FROM t1, t2 WHERE t1.b = t2.x");
  EXPECT_GT(with.total_cost, without.total_cost);
  EXPECT_LT(with.output_rows, without.output_rows);
  // ...but it can pay for itself by shrinking an aggregation's input
  // (filter pushed below the aggregate), like a real optimizer.
  PlanSummary agg_with = Plan(
      "SELECT COUNT(*) FROM t1, t2 WHERE t1.b = t2.x AND t1.c + t2.y > 50");
  PlanSummary agg_without =
      Plan("SELECT COUNT(*) FROM t1, t2 WHERE t1.b = t2.x");
  EXPECT_LT(agg_with.aggregate_cost, agg_without.aggregate_cost);
}

TEST_F(OptimizerEdgeTest, EmptyishQueryStillPlans) {
  PlanSummary plan = Plan("SELECT COUNT(*) FROM t3");
  ASSERT_EQ(plan.tables.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.output_rows, 1.0);  // single aggregate row
}

TEST_F(OptimizerEdgeTest, PlanCostStrictlyPositive) {
  for (const char* sql :
       {"SELECT * FROM t3", "SELECT p FROM t3 WHERE p = 1",
        "SELECT q, COUNT(*) FROM t3 GROUP BY q ORDER BY q DESC LIMIT 3"}) {
    EXPECT_GT(Plan(sql).total_cost, 0.0) << sql;
  }
}

TEST_F(OptimizerEdgeTest, DeterministicPlans) {
  const std::string sql =
      "SELECT t1.b, COUNT(*) FROM t1, t2 WHERE t1.b = t2.x GROUP BY t1.b";
  const PlanSummary a = Plan(sql);
  const PlanSummary b = Plan(sql);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t i = 0; i < a.tables.size(); ++i) {
    EXPECT_EQ(a.tables[i].table, b.tables[i].table);
    EXPECT_EQ(a.tables[i].join_method, b.tables[i].join_method);
  }
}

TEST_F(OptimizerEdgeTest, IndexToDdlRoundTripsThroughNames) {
  const catalog::TableId t1 = cat_.FindTable("t1")->id();
  Index index(t1, {cat_.ResolveColumn("t1", "b")},
              {cat_.ResolveColumn("t1", "c")});
  const std::string ddl = index.ToDdl(cat_, 3);
  EXPECT_EQ(ddl, "CREATE INDEX ix_t1_3 ON t1 (b) INCLUDE (c);");
}

}  // namespace
}  // namespace isum::engine
