// Unit tests for the isum_lint rule engine (tools/lint). These drive
// LintFile over in-memory snippets; the whole-tree scan itself runs as the
// separate `isum_lint_src` ctest entry.

#include <gtest/gtest.h>

#include <algorithm>

#include "tools/lint/lint.h"

namespace isum::lint {
namespace {

std::vector<Violation> Lint(const std::string& path,
                            const std::string& content,
                            const StatusApi& api = {}) {
  std::vector<Violation> out;
  LintFile(path, content, api, &out);
  return out;
}

bool HasRule(const std::vector<Violation>& vs, const std::string& rule) {
  return std::any_of(vs.begin(), vs.end(),
                     [&](const Violation& v) { return v.rule == rule; });
}

// ---------------------------------------------------------------- lexer

TEST(LintLexer, TokenKindsAndPositions) {
  const LexedSource src = Lex("int a = 42;\nf(a, \"str\", 'c');\n");
  ASSERT_GE(src.tokens.size(), 5u);
  EXPECT_EQ(src.tokens[0].kind, Token::Kind::kIdent);
  EXPECT_EQ(src.tokens[0].text, "int");
  EXPECT_EQ(src.tokens[0].line, 1);
  EXPECT_EQ(src.tokens[0].col, 1);
  EXPECT_EQ(src.tokens[2].kind, Token::Kind::kPunct);
  EXPECT_EQ(src.tokens[2].text, "=");
  EXPECT_EQ(src.tokens[3].kind, Token::Kind::kNumber);
  EXPECT_EQ(src.tokens[3].text, "42");
  EXPECT_EQ(src.tokens[3].col, 9);
  // Second line: string and char literals become opaque tokens.
  const auto str = std::find_if(
      src.tokens.begin(), src.tokens.end(),
      [](const Token& t) { return t.kind == Token::Kind::kString; });
  ASSERT_NE(str, src.tokens.end());
  EXPECT_EQ(str->line, 2);
  EXPECT_EQ(str->text, "<string>");
  const auto chr = std::find_if(
      src.tokens.begin(), src.tokens.end(),
      [](const Token& t) { return t.kind == Token::Kind::kChar; });
  ASSERT_NE(chr, src.tokens.end());
}

TEST(LintLexer, ScopeResolutionIsOneToken) {
  const LexedSource src = Lex("std::mutex m;");
  ASSERT_EQ(src.tokens.size(), 5u);  // std :: mutex m ;
  EXPECT_EQ(src.tokens[1].text, "::");
  EXPECT_EQ(src.tokens[1].kind, Token::Kind::kPunct);
}

TEST(LintLexer, PreprocessorDirectiveHeads) {
  const LexedSource src = Lex("#ifndef FOO_H_\n#define FOO_H_\nint x;\n");
  ASSERT_GE(src.tokens.size(), 4u);
  EXPECT_EQ(src.tokens[0].kind, Token::Kind::kPreproc);
  EXPECT_EQ(src.tokens[0].text, "#ifndef");
  EXPECT_EQ(src.tokens[1].text, "FOO_H_");
  EXPECT_EQ(src.tokens[2].text, "#define");
}

TEST(LintLexer, MultiLineBlockCommentProducesNoTokens) {
  const LexedSource src = Lex("a /* b\nassert(x);\nprintf(y); */ c\n");
  ASSERT_EQ(src.tokens.size(), 2u);
  EXPECT_EQ(src.tokens[0].text, "a");
  EXPECT_EQ(src.tokens[1].text, "c");
  EXPECT_EQ(src.tokens[1].line, 3);  // line tracking survives the comment
}

TEST(LintLexer, RawStringSpansLinesAsOneToken) {
  const LexedSource src =
      Lex("auto s = R\"sql(\nSELECT rand()\n)sql\";\nint z;\n");
  const auto str = std::find_if(
      src.tokens.begin(), src.tokens.end(),
      [](const Token& t) { return t.kind == Token::Kind::kString; });
  ASSERT_NE(str, src.tokens.end());
  // Nothing inside the raw string leaks out as identifiers.
  for (const Token& t : src.tokens) {
    EXPECT_NE(t.text, "SELECT");
    EXPECT_NE(t.text, "rand");
  }
  // Tokens after the raw string land on the right line.
  EXPECT_EQ(src.tokens.back().text, ";");
  EXPECT_EQ(src.tokens[src.tokens.size() - 2].text, "z");
  EXPECT_EQ(src.tokens[src.tokens.size() - 2].line, 4);
}

TEST(LintLexer, NolintHarvestedFromCommentsOnly) {
  const LexedSource src = Lex(
      "abort();  // NOLINT(isum-no-assert)\n"
      "const char* s = \"NOLINT\";\n"
      "// NOLINTNEXTLINE\n");
  ASSERT_EQ(src.nolint.size(), 1u);
  EXPECT_EQ(src.nolint.begin()->first, 1);
  EXPECT_FALSE(src.nolint.begin()->second.blanket);
  ASSERT_EQ(src.nolint.begin()->second.rules.size(), 1u);
  EXPECT_EQ(src.nolint.begin()->second.rules[0], "isum-no-assert");
  // The string-literal "NOLINT" on line 2 is data, not a directive.
  EXPECT_EQ(src.nolint.count(2), 0u);
  // NOLINTNEXTLINE registers in its own map, not as a same-line NOLINT.
  ASSERT_EQ(src.nolint_next.size(), 1u);
  EXPECT_EQ(src.nolint_next.begin()->first, 3);
  EXPECT_TRUE(src.nolint_next.begin()->second.blanket);
}

TEST(LintLexer, NolintInsideBlockCommentAttachesToItsLine) {
  const LexedSource src = Lex(
      "/* explanation\n"
      "   NOLINT(isum-no-stdio)\n"
      "   more text */\n");
  ASSERT_EQ(src.nolint.size(), 1u);
  EXPECT_EQ(src.nolint.begin()->first, 2);
}

// ------------------------------------------------------- existing rules

TEST(LintNoAssert, FlagsAssertAndAbortButNotStaticAssert) {
  const auto vs = Lint("src/x.cc",
                       "void F() {\n"
                       "  assert(x > 0);\n"
                       "  abort();\n"
                       "  static_assert(sizeof(int) == 4);\n"
                       "}\n");
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].rule, "isum-no-assert");
  EXPECT_EQ(vs[0].line, 2);
  EXPECT_EQ(vs[1].line, 3);
}

TEST(LintNoAssert, IgnoresCommentsAndStrings) {
  const auto vs = Lint("src/x.cc",
                       "// use assert(x) here\n"
                       "const char* s = \"abort()\";\n");
  EXPECT_TRUE(vs.empty());
}

TEST(LintNoAssert, IgnoresMultiLineCommentsAndRawStrings) {
  // Regression: the line-oriented engine saw the middle of multi-line
  // block comments and raw strings as code.
  EXPECT_TRUE(Lint("src/x.cc",
                   "/* start of a long comment\n"
                   "   abort();\n"
                   "   assert(x);\n"
                   "   end */\n")
                  .empty());
  EXPECT_TRUE(Lint("src/x.cc",
                   "const char* q = R\"(\n"
                   "  abort();\n"
                   ")\";\n")
                  .empty());
}

TEST(LintNoAssert, NolintInsideStringDoesNotSuppress) {
  // Regression: a "NOLINT" inside a string literal on the same line used to
  // suppress real findings.
  const auto vs = Lint("src/x.cc",
                       "log(\"see NOLINT docs\"); abort();\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "isum-no-assert");
}

TEST(LintNoStdio, FlagsPrintfFamilyAndStreams) {
  const auto vs = Lint("src/x.cc",
                       "void F() {\n"
                       "  printf(\"hi\");\n"
                       "  std::fprintf(stderr, \"x\");\n"
                       "  std::cout << 1;\n"
                       "  std::cerr << 2;\n"
                       "}\n");
  EXPECT_EQ(vs.size(), 4u);
  EXPECT_TRUE(HasRule(vs, "isum-no-stdio"));
}

TEST(LintNoStdio, AllowsSnprintfFormatting) {
  const auto vs = Lint("src/x.cc",
                       "int n = std::snprintf(buf, sizeof(buf), \"%d\", 7);\n"
                       "int m = std::vsnprintf(out.data(), n, fmt, args);\n");
  EXPECT_TRUE(vs.empty());
}

TEST(LintNoStdio, ToolsBenchAndTestsMayUseStdio) {
  const std::string snippet = "int main() { printf(\"ok\\n\"); }\n";
  EXPECT_FALSE(HasRule(Lint("tools/tracecat/main.cc", snippet),
                       "isum-no-stdio"));
  EXPECT_FALSE(HasRule(Lint("bench/bench_compress.cc", snippet),
                       "isum-no-stdio"));
  EXPECT_FALSE(HasRule(Lint("tests/foo_test.cc", snippet), "isum-no-stdio"));
}

TEST(LintNondeterminism, FlagsRandFamilyOutsideRng) {
  const auto vs = Lint("src/core/x.cc",
                       "int a = rand();\n"
                       "std::random_device rd;\n");
  EXPECT_EQ(vs.size(), 2u);
  EXPECT_TRUE(HasRule(vs, "isum-no-nondeterminism"));
}

TEST(LintNondeterminism, ExemptsRngImplementation) {
  const auto vs = Lint("src/common/rng.cc", "int a = rand();\n");
  EXPECT_TRUE(vs.empty());
}

TEST(LintNondeterminism, AppliesToBenchButNotTests) {
  const std::string snippet = "int a = rand();\n";
  EXPECT_TRUE(HasRule(Lint("bench/bench_compress.cc", snippet),
                      "isum-no-nondeterminism"));
  EXPECT_FALSE(HasRule(Lint("tests/foo_test.cc", snippet),
                       "isum-no-nondeterminism"));
}

TEST(LintNondeterminism, FlagsClockReadsOnlyInCore) {
  const std::string snippet =
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(HasRule(Lint("src/core/isum.cc", snippet),
                      "isum-no-nondeterminism"));
  // Outside core the nondeterminism rule stays quiet; the raw-clock rule
  // (tested below) takes over.
  EXPECT_FALSE(HasRule(Lint("src/engine/what_if.cc", snippet),
                       "isum-no-nondeterminism"));
}

TEST(LintNoRawClock, FlagsDirectClockReadsInLibraryCode) {
  for (const char* clock :
       {"steady_clock", "system_clock", "high_resolution_clock"}) {
    const auto vs =
        Lint("src/engine/what_if.cc",
             "auto t = std::chrono::" + std::string(clock) + "::now();\n");
    EXPECT_TRUE(HasRule(vs, "isum-no-raw-clock")) << clock;
  }
}

TEST(LintNoRawClock, FlagsRawSleeps) {
  const auto vs =
      Lint("src/advisor/advisor.cc",
           "std::this_thread::sleep_for(std::chrono::seconds(1));\n"
           "std::this_thread::sleep_until(when);\n");
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].rule, "isum-no-raw-clock");
  EXPECT_NE(vs[0].message.find("SleepForNanos"), std::string::npos);
  EXPECT_EQ(vs[1].line, 2);
}

TEST(LintNoRawClock, ExemptsTheClockImplementationAndTracer) {
  const std::string snippet =
      "auto t = std::chrono::steady_clock::now();\n"
      "std::this_thread::sleep_for(d);\n";
  EXPECT_FALSE(
      HasRule(Lint("src/common/deadline.cc", snippet), "isum-no-raw-clock"));
  EXPECT_FALSE(
      HasRule(Lint("src/obs/trace.cc", snippet), "isum-no-raw-clock"));
  // Non-src trees (bench drivers, tests) are out of scope for this rule.
  EXPECT_FALSE(
      HasRule(Lint("bench/bench_util.h", snippet), "isum-no-raw-clock"));
}

TEST(LintNoRawClock, MentionOfClockWithoutNowIsFine) {
  // Naming the type (e.g. in a using-declaration) without reading it is
  // allowed; only ::now() reads are flagged.
  EXPECT_FALSE(HasRule(
      Lint("src/engine/what_if.cc",
           "using clock_t2 = std::chrono::steady_clock;\n"),
      "isum-no-raw-clock"));
}

TEST(LintNoRawClock, HonorsNolint) {
  EXPECT_FALSE(HasRule(
      Lint("src/engine/what_if.cc",
           "auto t = std::chrono::steady_clock::now();"
           "  // NOLINT(isum-no-raw-clock)\n"),
      "isum-no-raw-clock"));
  EXPECT_FALSE(HasRule(
      Lint("src/engine/what_if.cc",
           "// NOLINTNEXTLINE(isum-no-raw-clock)\n"
           "std::this_thread::sleep_for(d);\n"),
      "isum-no-raw-clock"));
}

TEST(LintIncludeGuard, AcceptsCanonicalGuard) {
  const auto vs = Lint("src/catalog/catalog.h",
                       "#ifndef ISUM_CATALOG_CATALOG_H_\n"
                       "#define ISUM_CATALOG_CATALOG_H_\n"
                       "#endif  // ISUM_CATALOG_CATALOG_H_\n");
  EXPECT_TRUE(vs.empty());
}

TEST(LintIncludeGuard, FlagsWrongOrMissingGuard) {
  EXPECT_TRUE(HasRule(Lint("src/catalog/catalog.h",
                           "#ifndef CATALOG_H\n#define CATALOG_H\n#endif\n"),
                      "isum-include-guard"));
  EXPECT_TRUE(HasRule(Lint("src/catalog/catalog.h", "int x;\n"),
                      "isum-include-guard"));
  // Tools keep their tools/ prefix.
  EXPECT_TRUE(Lint("tools/lint/lint.h",
                   "#ifndef ISUM_TOOLS_LINT_LINT_H_\n"
                   "#define ISUM_TOOLS_LINT_LINT_H_\n"
                   "#endif\n")
                  .empty());
  // bench/ and tests/ headers keep their whole repo-relative path.
  EXPECT_TRUE(Lint("bench/bench_util.h",
                   "#ifndef ISUM_BENCH_BENCH_UTIL_H_\n"
                   "#define ISUM_BENCH_BENCH_UTIL_H_\n"
                   "#endif\n")
                  .empty());
}

TEST(LintIncludeGuard, WrongGuardCarriesARenameFix) {
  const auto vs = Lint("src/catalog/catalog.h",
                       "#ifndef CATALOG_H\n#define CATALOG_H\n#endif\n");
  ASSERT_EQ(vs.size(), 1u);
  ASSERT_EQ(vs[0].fixes.size(), 2u);  // #ifndef and #define both renamed
  EXPECT_EQ(vs[0].fixes[0].replacement, "ISUM_CATALOG_CATALOG_H_");
  EXPECT_EQ(vs[0].fixes[0].line, 1);
  EXPECT_EQ(vs[0].fixes[1].line, 2);
  // A missing guard has no mechanical fix.
  const auto missing = Lint("src/catalog/catalog.h", "int x;\n");
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_TRUE(missing[0].fixes.empty());
}

TEST(LintOverride, FlagsVirtualInDerivedClass) {
  const auto vs = Lint("src/x.h",
                       "#ifndef ISUM_X_H_\n"
                       "#define ISUM_X_H_\n"
                       "class D : public B {\n"
                       " public:\n"
                       "  virtual void F();\n"
                       "  void G() override;\n"
                       "  virtual ~D();\n"
                       "};\n"
                       "#endif  // ISUM_X_H_\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "isum-missing-override");
  EXPECT_EQ(vs[0].line, 5);
}

TEST(LintOverride, FlagsWrappedDeclarationMissingOverride) {
  const auto vs = Lint("src/x.h",
                       "#ifndef ISUM_X_H_\n"
                       "#define ISUM_X_H_\n"
                       "class D : public B {\n"
                       " public:\n"
                       "  virtual std::vector<int> Compute(\n"
                       "      const std::string& name,\n"
                       "      int count);\n"
                       "};\n"
                       "#endif  // ISUM_X_H_\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "isum-missing-override");
  EXPECT_EQ(vs[0].line, 5);  // reported at the `virtual` line
}

TEST(LintOverride, AcceptsOverrideOnContinuationLine) {
  const auto vs = Lint("src/x.h",
                       "#ifndef ISUM_X_H_\n"
                       "#define ISUM_X_H_\n"
                       "class D : public B {\n"
                       " public:\n"
                       "  virtual std::vector<int> Compute(\n"
                       "      const std::string& name,\n"
                       "      int count) override;\n"
                       "};\n"
                       "#endif  // ISUM_X_H_\n");
  EXPECT_TRUE(vs.empty());
}

TEST(LintOverride, IgnoresBaseClassVirtuals) {
  const auto vs = Lint("src/x.h",
                       "#ifndef ISUM_X_H_\n"
                       "#define ISUM_X_H_\n"
                       "class B {\n"
                       " public:\n"
                       "  virtual void F() = 0;\n"
                       "  virtual ~B() = default;\n"
                       "};\n"
                       "#endif  // ISUM_X_H_\n");
  EXPECT_TRUE(vs.empty());
}

TEST(LintOverride, SeesClassHeadsWrappedAcrossLines) {
  // The line-oriented engine required `class ... {` on one physical line.
  const auto vs = Lint("src/x.h",
                       "#ifndef ISUM_X_H_\n"
                       "#define ISUM_X_H_\n"
                       "class VeryLongDerivedName\n"
                       "    : public Base {\n"
                       " public:\n"
                       "  virtual void F();\n"
                       "};\n"
                       "#endif  // ISUM_X_H_\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "isum-missing-override");
}

TEST(LintStatus, CollectsStatusReturningNames) {
  StatusApi api;
  CollectStatusApi(
      "Status Open(const std::string& path);\n"
      "StatusOr<Table*> CreateTable(const std::string& name);\n"
      "StatusOr<std::vector<int>> Parse(const std::string& sql);\n"
      "void NotCollected();\n",
      &api);
  const auto& names = api.function_names;
  EXPECT_NE(std::find(names.begin(), names.end(), "Open"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "CreateTable"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Parse"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "NotCollected"),
            names.end());
}

TEST(LintStatus, CollectsWrappedDeclarations) {
  StatusApi api;
  CollectStatusApi(
      "StatusOr<std::vector<int>>\n"
      "Parse(const std::string& sql);\n"
      "Status\n"
      "Open(const std::string& path);\n"
      "StatusOr<std::map<std::string,\n"
      "                  int>>\n"
      "CountRows(const Table& t);\n",
      &api);
  const auto& names = api.function_names;
  EXPECT_NE(std::find(names.begin(), names.end(), "Parse"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Open"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "CountRows"), names.end());
}

TEST(LintStatus, FlagsVoidLaunderedStatusCalls) {
  StatusApi api;
  api.function_names = {"AddColumn"};
  const auto vs = Lint("src/x.cc",
                       "void F() {\n"
                       "  (void)table->AddColumn(c);\n"
                       "  (void)Unrelated(c);\n"
                       "}\n",
                       api);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "isum-unchecked-status");
  EXPECT_EQ(vs[0].line, 2);
}

TEST(LintStatus, RequiresNodiscardOnStatusClasses) {
  const std::string guard_ok =
      "#ifndef ISUM_COMMON_STATUS_H_\n#define ISUM_COMMON_STATUS_H_\n";
  EXPECT_TRUE(HasRule(Lint("src/common/status.h",
                           guard_ok + "class Status {\n};\n#endif\n"),
                      "isum-unchecked-status"));
  EXPECT_TRUE(Lint("src/common/status.h",
                   guard_ok +
                       "class [[nodiscard]] Status {\n};\n"
                       "template <typename T>\n"
                       "class [[nodiscard]] StatusOr {\n};\n#endif\n")
                  .empty());
}

TEST(LintNolint, SameLineAndNextLineSuppression) {
  EXPECT_TRUE(Lint("src/x.cc", "abort();  // NOLINT(isum-no-assert)\n")
                  .empty());
  EXPECT_TRUE(Lint("src/x.cc",
                   "// NOLINTNEXTLINE(isum-no-assert)\n"
                   "abort();\n")
                  .empty());
  // Blanket NOLINT suppresses every rule on the line.
  EXPECT_TRUE(Lint("src/x.cc", "abort();  // NOLINT\n").empty());
  // A NOLINT for a different rule does not suppress.
  EXPECT_FALSE(Lint("src/x.cc", "abort();  // NOLINT(isum-no-stdio)\n")
                   .empty());
}

TEST(LintOutput, ViolationFormatsAsFileLineCol) {
  const auto vs = Lint("src/x.cc", "abort();\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].ToString(), "src/x.cc:1:1: [isum-no-assert] "
                              "library code must not call abort() directly; "
                              "use ISUM_CHECK or return a Status");
}

TEST(LintRules, KnownRulesListsAllThirteenRules) {
  const auto rules = KnownRules();
  EXPECT_EQ(rules.size(), 13u);
  for (const char* r :
       {"isum-no-assert", "isum-no-stdio", "isum-no-nondeterminism",
        "isum-include-guard", "isum-missing-override",
        "isum-unchecked-status", "isum-no-raw-clock",
        "isum-no-perpair-alloc", "isum-budget-poll", "isum-lock-scope",
        "isum-guarded-by", "isum-journal-schema",
        "isum-no-alloc-in-signal"}) {
    EXPECT_NE(std::find(rules.begin(), rules.end(), r), rules.end()) << r;
  }
}

TEST(LintJournalSchema, FlagsAdHocJsonEmissionInLibraryCode) {
  const auto vs = Lint(
      "src/core/summary.cc",
      "void F() { Log(\"{\\\"event\\\": \\\"pick\\\", \\\"q\\\": 3}\"); }\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "isum-journal-schema");
}

TEST(LintJournalSchema, FlagsRawStringJsonObjects) {
  const auto vs = Lint("src/advisor/enumerator.cc",
                       "const char* kJson = R\"({\"round\": 1})\";\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "isum-journal-schema");
}

TEST(LintJournalSchema, AllowsTheObsEmittersThemselves) {
  EXPECT_TRUE(Lint("src/obs/journal.cc",
                   "out += \"{\\\"event\\\": \\\"select\\\"}\";\n")
                  .empty());
}

TEST(LintJournalSchema, AllowsPlainBracesAndNonJsonStrings) {
  // A lone "{" (say, for code generation) is not a JSON object literal.
  EXPECT_TRUE(Lint("src/core/isum.cc", "out += \"{\";\n").empty());
  EXPECT_TRUE(
      Lint("src/core/isum.cc", "Log(\"selected {} queries\");\n").empty());
}

TEST(LintJournalSchema, NolintNextlineSuppresses) {
  EXPECT_TRUE(
      Lint("src/workload/query_store.cc",
           "// NOLINTNEXTLINE(isum-journal-schema)\n"
           "out += StrFormat(\"{\\\"sql\\\": \\\"%s\\\"}\", s.c_str());\n")
          .empty());
}

TEST(LintPerPairAlloc, FlagsVectorInsideHotPathLoop) {
  const auto vs = Lint("src/core/summary.cc",
                       "void F(size_t n) {\n"
                       "  for (size_t i = 0; i < n; ++i) {\n"
                       "    std::vector<double> sims(n);\n"
                       "  }\n"
                       "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "isum-no-perpair-alloc");
  EXPECT_EQ(vs[0].line, 3);
}

TEST(LintPerPairAlloc, AllowsVectorOutsideLoopsAndOutsideHotPath) {
  // Hoisted before the loop: fine.
  EXPECT_TRUE(Lint("src/core/summary.cc",
                   "void F(size_t n) {\n"
                   "  std::vector<double> sims(n);\n"
                   "  for (size_t i = 0; i < n; ++i) {\n"
                   "    sims[i] = 0.0;\n"
                   "  }\n"
                   "}\n")
                  .empty());
  // Same pattern in a non-hot-path file: not this rule's business.
  EXPECT_TRUE(Lint("src/eval/metrics.cc",
                   "void F(size_t n) {\n"
                   "  for (size_t i = 0; i < n; ++i) {\n"
                   "    std::vector<double> sims(n);\n"
                   "  }\n"
                   "}\n")
                  .empty());
}

TEST(LintPerPairAlloc, TracksWhileLoopsAndWrappedHeaders) {
  const auto vs = Lint("src/core/incremental.cc",
                       "void F(size_t n) {\n"
                       "  while (n > 0)\n"
                       "  {\n"
                       "    std::vector<int> ids;\n"
                       "  }\n"
                       "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].line, 4);
  // Unbraced single-statement loop body, then an unrelated block: the block
  // must not be mistaken for the loop body.
  EXPECT_TRUE(Lint("src/core/incremental.cc",
                   "void F(size_t n) {\n"
                   "  for (size_t i = 0; i < n; ++i) Touch(i);\n"
                   "  {\n"
                   "    std::vector<int> ids;\n"
                   "  }\n"
                   "}\n")
                  .empty());
}

TEST(LintPerPairAlloc, HonorsNolint) {
  EXPECT_TRUE(
      Lint("src/baselines/kmedoid.cc",
           "void F(size_t n) {\n"
           "  for (size_t i = 0; i < n; ++i) {\n"
           "    std::vector<int> ids;  // NOLINT(isum-no-perpair-alloc)\n"
           "  }\n"
           "}\n")
          .empty());
}

// ------------------------------------------------------ flow-aware rules

TEST(LintBudgetPoll, FlagsCostingLoopWithoutPoll) {
  const auto vs = Lint("src/core/greedy.cc",
                       "void F(Workload& w) {\n"
                       "  for (size_t i = 0; i < w.size(); ++i) {\n"
                       "    total += optimizer.TryCost(w.query(i), conf);\n"
                       "  }\n"
                       "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "isum-budget-poll");
  EXPECT_EQ(vs[0].line, 2);  // reported at the loop header
  EXPECT_NE(vs[0].message.find("TryCost"), std::string::npos);
}

TEST(LintBudgetPoll, PollingOrThreadingTheBudgetIsClean) {
  // Explicit poll in the loop body.
  EXPECT_TRUE(Lint("src/core/greedy.cc",
                   "void F(Workload& w, const TimeBudget& budget) {\n"
                   "  for (size_t i = 0; i < w.size(); ++i) {\n"
                   "    if (!budget.CheckCancelled().ok()) break;\n"
                   "    total += optimizer.TryCost(w.query(i), conf);\n"
                   "  }\n"
                   "}\n")
                  .empty());
  // Budget threaded into the costing call itself.
  EXPECT_TRUE(Lint("src/advisor/enumerator.cc",
                   "void F(Workload& w, const TimeBudget& round_budget) {\n"
                   "  while (More()) {\n"
                   "    total += optimizer.TryCost(q, conf, round_budget);\n"
                   "  }\n"
                   "}\n")
                  .empty());
}

TEST(LintBudgetPoll, OnlyCoreAndAdvisorAreInScope) {
  const std::string snippet =
      "void F() {\n"
      "  for (int i = 0; i < 9; ++i) {\n"
      "    total += optimizer.TryCost(q, conf);\n"
      "  }\n"
      "}\n";
  EXPECT_FALSE(HasRule(Lint("src/eval/pipeline.cc", snippet),
                       "isum-budget-poll"));
  EXPECT_FALSE(HasRule(Lint("tests/foo_test.cc", snippet),
                       "isum-budget-poll"));
  EXPECT_TRUE(HasRule(Lint("src/advisor/enumerator.cc", snippet),
                      "isum-budget-poll"));
}

TEST(LintBudgetPoll, InnerPollSatisfiesEveryEnclosingLoop) {
  // A poll anywhere inside the loop body (here: in the inner loop) counts
  // for every enclosing loop — per-iteration polling is the documented
  // pattern.
  EXPECT_TRUE(Lint("src/core/greedy.cc",
                   "void F(const TimeBudget& budget) {\n"
                   "  while (round < max_rounds) {\n"
                   "    for (size_t i = 0; i < n; ++i) {\n"
                   "      if (!budget.CheckCancelled().ok()) break;\n"
                   "      total += optimizer.TryCost(q[i], conf);\n"
                   "    }\n"
                   "  }\n"
                   "}\n")
                  .empty());
  // Conversely: an outer-loop poll that happens before the costing loop is
  // even entered does not license a poll-free inner costing loop.
  EXPECT_TRUE(HasRule(Lint("src/core/greedy.cc",
                           "void F(const TimeBudget& budget) {\n"
                           "  while (round < max_rounds) {\n"
                           "    if (!budget.CheckCancelled().ok()) break;\n"
                           "    for (size_t i = 0; i < n; ++i) {\n"
                           "      total += optimizer.TryCost(q[i], conf);\n"
                           "    }\n"
                           "  }\n"
                           "}\n"),
                      "isum-budget-poll"));
}

TEST(LintBudgetPoll, HonorsNolintOnLoopHeader) {
  EXPECT_TRUE(Lint("src/core/greedy.cc",
                   "void F() {\n"
                   "  // NOLINTNEXTLINE(isum-budget-poll)\n"
                   "  for (size_t i = 0; i < n; ++i) {\n"
                   "    total += optimizer.TryCost(q, conf);\n"
                   "  }\n"
                   "}\n")
                  .empty());
}

TEST(LintLockScope, FlagsExpensiveCallsUnderALock) {
  const auto vs = Lint("src/engine/what_if.cc",
                       "void F() {\n"
                       "  MutexLock lock(shard.mutex);\n"
                       "  double c = optimizer_->Optimize(q, conf);\n"
                       "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "isum-lock-scope");
  EXPECT_EQ(vs[0].line, 3);
}

TEST(LintLockScope, LockScopeEndsAtItsBrace) {
  EXPECT_TRUE(Lint("src/engine/what_if.cc",
                   "void F() {\n"
                   "  {\n"
                   "    std::lock_guard<std::mutex> lock(mu);  "
                   "// NOLINT(isum-guarded-by)\n"
                   "    cache[key] = value;\n"
                   "  }\n"
                   "  double c = optimizer_->Optimize(q, conf);\n"
                   "}\n")
                  .empty());
}

TEST(LintLockScope, AppliesOutsideSrcToo) {
  EXPECT_TRUE(HasRule(Lint("tests/pool_test.cc",
                           "void F() {\n"
                           "  std::scoped_lock lock(mu);\n"
                           "  pool.ParallelFor(0, n, fn);\n"
                           "}\n"),
                      "isum-lock-scope"));
  // The annotated shims themselves are exempt.
  EXPECT_FALSE(HasRule(Lint("src/common/mutex.h",
                            "void F() {\n"
                            "  MutexLock lock(mu);\n"
                            "  SleepForNanos(1);\n"
                            "}\n"),
                       "isum-lock-scope"));
}

TEST(LintGuardedBy, FlagsStdMutexInLibraryCodeWithFix) {
  const auto vs = Lint("src/engine/cache.h",
                       "#ifndef ISUM_ENGINE_CACHE_H_\n"
                       "#define ISUM_ENGINE_CACHE_H_\n"
                       "class C {\n"
                       "  std::mutex mu_;\n"
                       "};\n"
                       "#endif  // ISUM_ENGINE_CACHE_H_\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "isum-guarded-by");
  EXPECT_EQ(vs[0].line, 4);
  ASSERT_EQ(vs[0].fixes.size(), 1u);
  EXPECT_EQ(vs[0].fixes[0].replacement, "isum::Mutex");
}

TEST(LintGuardedBy, FlagsCondVarAndExemptsShimAndNonSrc) {
  EXPECT_TRUE(HasRule(Lint("src/common/thread_pool.h",
                           "std::condition_variable work_available_;\n"),
                      "isum-guarded-by"));
  // The shim wraps the std types by design.
  EXPECT_FALSE(HasRule(Lint("src/common/mutex.h", "std::mutex raw_;\n"),
                       "isum-guarded-by"));
  // Tests and tools may use raw std::mutex.
  EXPECT_FALSE(HasRule(Lint("tests/foo_test.cc", "std::mutex mu;\n"),
                       "isum-guarded-by"));
}

TEST(LintGuardedBy, TemplateArgumentsAndIncludesAreNotDeclarations) {
  EXPECT_TRUE(Lint("src/engine/x.cc",
                   "#include <mutex>\n"
                   "void F() {\n"
                   "  std::unique_lock<std::mutex> lk(mu, std::defer_lock);\n"
                   "}\n")
                  .empty());
}

TEST(LintNoAllocInSignal, FlagsAllocationLockingAndStdioInAnnotatedBody) {
  const auto vs =
      Lint("src/obs/handler.cc",
           "ISUM_SIGNAL_SAFE void Handler(int sig) {\n"
           "  char* p = new char[64];\n"
           "  void* q = malloc(64);\n"
           "  MutexLock lock(mu_);\n"
           "  fprintf(stderr, \"tick\\n\");\n"
           "}\n");
  EXPECT_EQ(std::count_if(vs.begin(), vs.end(),
                          [](const Violation& v) {
                            return v.rule == "isum-no-alloc-in-signal";
                          }),
            4);
}

TEST(LintNoAllocInSignal, ScopeEndsAtTheBodyBrace) {
  // The same operations right after the annotated body are legal.
  const auto vs = Lint("src/obs/handler.cc",
                       "ISUM_SIGNAL_SAFE void Handler(int sig) {\n"
                       "  if (armed) {\n"
                       "    counter.fetch_add(1);\n"
                       "  }\n"
                       "}\n"
                       "void Setup() {\n"
                       "  buffer = new char[1 << 20];\n"
                       "}\n");
  EXPECT_FALSE(HasRule(vs, "isum-no-alloc-in-signal"));
}

TEST(LintNoAllocInSignal, AnnotatedDeclarationDoesNotArm) {
  // A declaration ends at ';' — the next function body is unannotated.
  EXPECT_FALSE(HasRule(Lint("src/obs/handler.h",
                            "#ifndef ISUM_OBS_HANDLER_H_\n"
                            "#define ISUM_OBS_HANDLER_H_\n"
                            "ISUM_SIGNAL_SAFE const char* CurrentPhase();\n"
                            "inline void Helper() { p = malloc(8); }\n"
                            "#endif  // ISUM_OBS_HANDLER_H_\n"),
                       "isum-no-alloc-in-signal"));
}

TEST(LintNoAllocInSignal, SafePatternsAndNolintPass) {
  // The real handler shape: atomics, arrays, errno save/restore.
  EXPECT_FALSE(HasRule(Lint("src/obs/profiler.cc",
                            "ISUM_SIGNAL_SAFE void Handler(int sig) {\n"
                            "  const int saved_errno = errno;\n"
                            "  Buffer* b = g_buffer.load();\n"
                            "  if (b) b->next.fetch_add(1);\n"
                            "  errno = saved_errno;\n"
                            "}\n"),
                       "isum-no-alloc-in-signal"));
  EXPECT_FALSE(HasRule(
      Lint("src/obs/handler.cc",
           "ISUM_SIGNAL_SAFE void Handler(int sig) {\n"
           "  p = malloc(8);  // NOLINT(isum-no-alloc-in-signal)\n"
           "}\n"),
      "isum-no-alloc-in-signal"));
}

// ------------------------------------------------- fixes and output

TEST(LintApplyFixes, RewritesGuardAndMutexDeclarations) {
  const std::string content =
      "#ifndef WRONG_H\n"
      "#define WRONG_H\n"
      "std::mutex mu;\n"
      "#endif\n";
  const auto vs = Lint("src/catalog/catalog.h", content);
  const std::string fixed = ApplyFixes(content, vs);
  EXPECT_NE(fixed.find("#ifndef ISUM_CATALOG_CATALOG_H_"),
            std::string::npos);
  EXPECT_NE(fixed.find("#define ISUM_CATALOG_CATALOG_H_"),
            std::string::npos);
  EXPECT_NE(fixed.find("isum::Mutex mu;"), std::string::npos);
  EXPECT_EQ(fixed.find("std::mutex"), std::string::npos);
  // Re-linting the fixed content finds nothing fixable.
  const auto again = Lint("src/catalog/catalog.h", fixed);
  for (const auto& v : again) EXPECT_TRUE(v.fixes.empty());
}

TEST(LintApplyFixes, NoFixesIsIdentity) {
  const std::string content = "abort();\n";
  const auto vs = Lint("src/x.cc", content);
  EXPECT_EQ(ApplyFixes(content, vs), content);
}

TEST(LintOutputFormats, JsonShape) {
  const auto vs = Lint("src/x.cc", "abort();\n");
  const std::string json = ToJson(vs);
  EXPECT_NE(json.find("\"violations\":["), std::string::npos);
  EXPECT_NE(json.find("\"file\":\"src/x.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"isum-no-assert\""), std::string::npos);
  EXPECT_NE(json.find("\"fixable\":false"), std::string::npos);
  // Empty input still yields a valid document.
  EXPECT_EQ(ToJson({}), "{\"violations\":[]}");
}

TEST(LintOutputFormats, SarifShape) {
  const auto vs = Lint("src/x.cc", "abort();\n");
  const std::string sarif = ToSarif(vs);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"isum_lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"isum-no-assert\""), std::string::npos);
  EXPECT_NE(sarif.find("\"artifactLocation\":{\"uri\":\"src/x.cc\"}"),
            std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":1"), std::string::npos);
  // Every known rule is declared in the driver's rule table.
  for (const auto& rule : KnownRules()) {
    EXPECT_NE(sarif.find("{\"id\":\"" + rule + "\"}"), std::string::npos)
        << rule;
  }
  // Messages with quotes/backslashes are escaped into valid JSON.
  std::vector<Violation> weird;
  weird.push_back(Violation{"src/a\"b.cc", 1, 1, "isum-no-assert",
                            "say \"no\" to \\ backslashes", {}});
  const std::string escaped = ToSarif(weird);
  EXPECT_NE(escaped.find("say \\\"no\\\" to \\\\ backslashes"),
            std::string::npos);
}

}  // namespace
}  // namespace isum::lint
