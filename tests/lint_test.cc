// Unit tests for the isum_lint rule engine (tools/lint). These drive
// LintFile over in-memory snippets; the whole-tree scan itself runs as the
// separate `isum_lint_src` ctest entry.

#include <gtest/gtest.h>

#include <algorithm>

#include "tools/lint/lint.h"

namespace isum::lint {
namespace {

std::vector<Violation> Lint(const std::string& path,
                            const std::string& content,
                            const StatusApi& api = {}) {
  std::vector<Violation> out;
  LintFile(path, content, api, &out);
  return out;
}

bool HasRule(const std::vector<Violation>& vs, const std::string& rule) {
  return std::any_of(vs.begin(), vs.end(),
                     [&](const Violation& v) { return v.rule == rule; });
}

TEST(LintStrip, RemovesCommentsAndLiteralContents) {
  bool in_block = false;
  EXPECT_EQ(StripCommentsAndLiterals("int a;  // assert(x)", &in_block),
            "int a;  ");
  EXPECT_EQ(StripCommentsAndLiterals("f(\"assert(x)\");", &in_block),
            "f(\"         \");");
  EXPECT_EQ(StripCommentsAndLiterals("a /* b", &in_block), "a ");
  EXPECT_TRUE(in_block);
  EXPECT_EQ(StripCommentsAndLiterals("still */ c", &in_block), " c");
  EXPECT_FALSE(in_block);
}

TEST(LintNoAssert, FlagsAssertAndAbortButNotStaticAssert) {
  const auto vs = Lint("src/x.cc",
                       "void F() {\n"
                       "  assert(x > 0);\n"
                       "  abort();\n"
                       "  static_assert(sizeof(int) == 4);\n"
                       "}\n");
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].rule, "isum-no-assert");
  EXPECT_EQ(vs[0].line, 2);
  EXPECT_EQ(vs[1].line, 3);
}

TEST(LintNoAssert, IgnoresCommentsAndStrings) {
  const auto vs = Lint("src/x.cc",
                       "// use assert(x) here\n"
                       "const char* s = \"abort()\";\n");
  EXPECT_TRUE(vs.empty());
}

TEST(LintNoStdio, FlagsPrintfFamilyAndStreams) {
  const auto vs = Lint("src/x.cc",
                       "void F() {\n"
                       "  printf(\"hi\");\n"
                       "  std::fprintf(stderr, \"x\");\n"
                       "  std::cout << 1;\n"
                       "  std::cerr << 2;\n"
                       "}\n");
  EXPECT_EQ(vs.size(), 4u);
  EXPECT_TRUE(HasRule(vs, "isum-no-stdio"));
}

TEST(LintNoStdio, AllowsSnprintfFormatting) {
  const auto vs = Lint("src/x.cc",
                       "int n = std::snprintf(buf, sizeof(buf), \"%d\", 7);\n"
                       "int m = std::vsnprintf(out.data(), n, fmt, args);\n");
  EXPECT_TRUE(vs.empty());
}

TEST(LintNondeterminism, FlagsRandFamilyOutsideRng) {
  const auto vs = Lint("src/core/x.cc",
                       "int a = rand();\n"
                       "std::random_device rd;\n");
  EXPECT_EQ(vs.size(), 2u);
  EXPECT_TRUE(HasRule(vs, "isum-no-nondeterminism"));
}

TEST(LintNondeterminism, ExemptsRngImplementation) {
  const auto vs = Lint("src/common/rng.cc", "int a = rand();\n");
  EXPECT_TRUE(vs.empty());
}

TEST(LintNondeterminism, FlagsClockReadsOnlyInCore) {
  const std::string snippet =
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(HasRule(Lint("src/core/isum.cc", snippet),
                      "isum-no-nondeterminism"));
  // Outside core the nondeterminism rule stays quiet; the raw-clock rule
  // (tested below) takes over.
  EXPECT_FALSE(HasRule(Lint("src/engine/what_if.cc", snippet),
                       "isum-no-nondeterminism"));
}

TEST(LintNoRawClock, FlagsDirectClockReadsInLibraryCode) {
  for (const char* clock :
       {"steady_clock", "system_clock", "high_resolution_clock"}) {
    const auto vs =
        Lint("src/engine/what_if.cc",
             "auto t = std::chrono::" + std::string(clock) + "::now();\n");
    EXPECT_TRUE(HasRule(vs, "isum-no-raw-clock")) << clock;
  }
}

TEST(LintNoRawClock, FlagsRawSleeps) {
  const auto vs =
      Lint("src/advisor/advisor.cc",
           "std::this_thread::sleep_for(std::chrono::seconds(1));\n"
           "std::this_thread::sleep_until(when);\n");
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].rule, "isum-no-raw-clock");
  EXPECT_NE(vs[0].message.find("SleepForNanos"), std::string::npos);
  EXPECT_EQ(vs[1].line, 2);
}

TEST(LintNoRawClock, ExemptsTheClockImplementationAndTracer) {
  const std::string snippet =
      "auto t = std::chrono::steady_clock::now();\n"
      "std::this_thread::sleep_for(d);\n";
  EXPECT_FALSE(
      HasRule(Lint("src/common/deadline.cc", snippet), "isum-no-raw-clock"));
  EXPECT_FALSE(
      HasRule(Lint("src/obs/trace.cc", snippet), "isum-no-raw-clock"));
  // Non-src trees (bench drivers, tests) are out of scope for this rule.
  EXPECT_FALSE(
      HasRule(Lint("bench/bench_util.h", snippet), "isum-no-raw-clock"));
}

TEST(LintNoRawClock, MentionOfClockWithoutNowIsFine) {
  // Naming the type (e.g. in a using-declaration) without reading it is
  // allowed; only ::now() reads are flagged.
  EXPECT_FALSE(HasRule(
      Lint("src/engine/what_if.cc",
           "using clock_t2 = std::chrono::steady_clock;\n"),
      "isum-no-raw-clock"));
}

TEST(LintNoRawClock, HonorsNolint) {
  EXPECT_FALSE(HasRule(
      Lint("src/engine/what_if.cc",
           "auto t = std::chrono::steady_clock::now();"
           "  // NOLINT(isum-no-raw-clock)\n"),
      "isum-no-raw-clock"));
  EXPECT_FALSE(HasRule(
      Lint("src/engine/what_if.cc",
           "// NOLINTNEXTLINE(isum-no-raw-clock)\n"
           "std::this_thread::sleep_for(d);\n"),
      "isum-no-raw-clock"));
}

TEST(LintIncludeGuard, AcceptsCanonicalGuard) {
  const auto vs = Lint("src/catalog/catalog.h",
                       "#ifndef ISUM_CATALOG_CATALOG_H_\n"
                       "#define ISUM_CATALOG_CATALOG_H_\n"
                       "#endif  // ISUM_CATALOG_CATALOG_H_\n");
  EXPECT_TRUE(vs.empty());
}

TEST(LintIncludeGuard, FlagsWrongOrMissingGuard) {
  EXPECT_TRUE(HasRule(Lint("src/catalog/catalog.h",
                           "#ifndef CATALOG_H\n#define CATALOG_H\n#endif\n"),
                      "isum-include-guard"));
  EXPECT_TRUE(HasRule(Lint("src/catalog/catalog.h", "int x;\n"),
                      "isum-include-guard"));
  // Tools keep their tools/ prefix.
  EXPECT_TRUE(Lint("tools/lint/lint.h",
                   "#ifndef ISUM_TOOLS_LINT_LINT_H_\n"
                   "#define ISUM_TOOLS_LINT_LINT_H_\n"
                   "#endif\n")
                  .empty());
}

TEST(LintOverride, FlagsVirtualInDerivedClass) {
  const auto vs = Lint("src/x.h",
                       "#ifndef ISUM_X_H_\n"
                       "#define ISUM_X_H_\n"
                       "class D : public B {\n"
                       " public:\n"
                       "  virtual void F();\n"
                       "  void G() override;\n"
                       "  virtual ~D();\n"
                       "};\n"
                       "#endif  // ISUM_X_H_\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "isum-missing-override");
  EXPECT_EQ(vs[0].line, 5);
}

TEST(LintOverride, FlagsWrappedDeclarationMissingOverride) {
  const auto vs = Lint("src/x.h",
                       "#ifndef ISUM_X_H_\n"
                       "#define ISUM_X_H_\n"
                       "class D : public B {\n"
                       " public:\n"
                       "  virtual std::vector<int> Compute(\n"
                       "      const std::string& name,\n"
                       "      int budget);\n"
                       "};\n"
                       "#endif  // ISUM_X_H_\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "isum-missing-override");
  EXPECT_EQ(vs[0].line, 5);  // reported at the `virtual` line
}

TEST(LintOverride, AcceptsOverrideOnContinuationLine) {
  const auto vs = Lint("src/x.h",
                       "#ifndef ISUM_X_H_\n"
                       "#define ISUM_X_H_\n"
                       "class D : public B {\n"
                       " public:\n"
                       "  virtual std::vector<int> Compute(\n"
                       "      const std::string& name,\n"
                       "      int budget) override;\n"
                       "};\n"
                       "#endif  // ISUM_X_H_\n");
  EXPECT_TRUE(vs.empty());
}

TEST(LintOverride, IgnoresBaseClassVirtuals) {
  const auto vs = Lint("src/x.h",
                       "#ifndef ISUM_X_H_\n"
                       "#define ISUM_X_H_\n"
                       "class B {\n"
                       " public:\n"
                       "  virtual void F() = 0;\n"
                       "  virtual ~B() = default;\n"
                       "};\n"
                       "#endif  // ISUM_X_H_\n");
  EXPECT_TRUE(vs.empty());
}

TEST(LintStatus, CollectsStatusReturningNames) {
  StatusApi api;
  CollectStatusApi(
      "Status Open(const std::string& path);\n"
      "StatusOr<Table*> CreateTable(const std::string& name);\n"
      "StatusOr<std::vector<int>> Parse(const std::string& sql);\n"
      "void NotCollected();\n",
      &api);
  const auto& names = api.function_names;
  EXPECT_NE(std::find(names.begin(), names.end(), "Open"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "CreateTable"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Parse"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "NotCollected"),
            names.end());
}

TEST(LintStatus, CollectsWrappedDeclarations) {
  StatusApi api;
  CollectStatusApi(
      "StatusOr<std::vector<int>>\n"
      "Parse(const std::string& sql);\n"
      "Status\n"
      "Open(const std::string& path);\n"
      "StatusOr<std::map<std::string,\n"
      "                  int>>\n"
      "CountRows(const Table& t);\n",
      &api);
  const auto& names = api.function_names;
  EXPECT_NE(std::find(names.begin(), names.end(), "Parse"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Open"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "CountRows"), names.end());
}

TEST(LintStatus, FlagsVoidLaunderedStatusCalls) {
  StatusApi api;
  api.function_names = {"AddColumn"};
  const auto vs = Lint("src/x.cc",
                       "void F() {\n"
                       "  (void)table->AddColumn(c);\n"
                       "  (void)Unrelated(c);\n"
                       "}\n",
                       api);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "isum-unchecked-status");
  EXPECT_EQ(vs[0].line, 2);
}

TEST(LintStatus, RequiresNodiscardOnStatusClasses) {
  const std::string guard_ok =
      "#ifndef ISUM_COMMON_STATUS_H_\n#define ISUM_COMMON_STATUS_H_\n";
  EXPECT_TRUE(HasRule(Lint("src/common/status.h",
                           guard_ok + "class Status {\n};\n#endif\n"),
                      "isum-unchecked-status"));
  EXPECT_TRUE(Lint("src/common/status.h",
                   guard_ok +
                       "class [[nodiscard]] Status {\n};\n"
                       "template <typename T>\n"
                       "class [[nodiscard]] StatusOr {\n};\n#endif\n")
                  .empty());
}

TEST(LintNolint, SameLineAndNextLineSuppression) {
  EXPECT_TRUE(Lint("src/x.cc", "abort();  // NOLINT(isum-no-assert)\n")
                  .empty());
  EXPECT_TRUE(Lint("src/x.cc",
                   "// NOLINTNEXTLINE(isum-no-assert)\n"
                   "abort();\n")
                  .empty());
  // Blanket NOLINT suppresses every rule on the line.
  EXPECT_TRUE(Lint("src/x.cc", "abort();  // NOLINT\n").empty());
  // A NOLINT for a different rule does not suppress.
  EXPECT_FALSE(Lint("src/x.cc", "abort();  // NOLINT(isum-no-stdio)\n")
                   .empty());
}

TEST(LintOutput, ViolationFormatsAsFileLineCol) {
  const auto vs = Lint("src/x.cc", "abort();\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].ToString(), "src/x.cc:1:1: [isum-no-assert] "
                              "library code must not call abort() directly; "
                              "use ISUM_CHECK or return a Status");
}

TEST(LintRules, KnownRulesListsAllEightRules) {
  const auto rules = KnownRules();
  EXPECT_EQ(rules.size(), 8u);
  for (const char* r :
       {"isum-no-assert", "isum-no-stdio", "isum-no-nondeterminism",
        "isum-include-guard", "isum-missing-override",
        "isum-unchecked-status", "isum-no-raw-clock",
        "isum-no-perpair-alloc"}) {
    EXPECT_NE(std::find(rules.begin(), rules.end(), r), rules.end()) << r;
  }
}

TEST(LintPerPairAlloc, FlagsVectorInsideHotPathLoop) {
  const auto vs = Lint("src/core/summary.cc",
                       "void F(size_t n) {\n"
                       "  for (size_t i = 0; i < n; ++i) {\n"
                       "    std::vector<double> sims(n);\n"
                       "  }\n"
                       "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "isum-no-perpair-alloc");
  EXPECT_EQ(vs[0].line, 3);
}

TEST(LintPerPairAlloc, AllowsVectorOutsideLoopsAndOutsideHotPath) {
  // Hoisted before the loop: fine.
  EXPECT_TRUE(Lint("src/core/summary.cc",
                   "void F(size_t n) {\n"
                   "  std::vector<double> sims(n);\n"
                   "  for (size_t i = 0; i < n; ++i) {\n"
                   "    sims[i] = 0.0;\n"
                   "  }\n"
                   "}\n")
                  .empty());
  // Same pattern in a non-hot-path file: not this rule's business.
  EXPECT_TRUE(Lint("src/eval/metrics.cc",
                   "void F(size_t n) {\n"
                   "  for (size_t i = 0; i < n; ++i) {\n"
                   "    std::vector<double> sims(n);\n"
                   "  }\n"
                   "}\n")
                  .empty());
}

TEST(LintPerPairAlloc, TracksWhileLoopsAndWrappedHeaders) {
  const auto vs = Lint("src/core/incremental.cc",
                       "void F(size_t n) {\n"
                       "  while (n > 0)\n"
                       "  {\n"
                       "    std::vector<int> ids;\n"
                       "  }\n"
                       "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].line, 4);
  // Unbraced single-statement loop body, then an unrelated block: the block
  // must not be mistaken for the loop body.
  EXPECT_TRUE(Lint("src/core/incremental.cc",
                   "void F(size_t n) {\n"
                   "  for (size_t i = 0; i < n; ++i) Touch(i);\n"
                   "  {\n"
                   "    std::vector<int> ids;\n"
                   "  }\n"
                   "}\n")
                  .empty());
}

TEST(LintPerPairAlloc, HonorsNolint) {
  EXPECT_TRUE(
      Lint("src/baselines/kmedoid.cc",
           "void F(size_t n) {\n"
           "  for (size_t i = 0; i < n; ++i) {\n"
           "    std::vector<int> ids;  // NOLINT(isum-no-perpair-alloc)\n"
           "  }\n"
           "}\n")
          .empty());
}

}  // namespace
}  // namespace isum::lint
