// Concurrency soak tests for the robustness layer: many threads hammering
// fault sites, budgeted what-if calls, and early-exiting ParallelFor
// batches. Named FaultStress* so the CI TSan job can select them; every
// test must be free of deadlocks, data races, and counter corruption.

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "advisor/advisor.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/thread_pool.h"
#include "core/isum.h"
#include "engine/what_if.h"
#include "workload/workload_factory.h"

namespace isum {
namespace {

void NoSleep(uint64_t) {}

class FaultStressTest : public ::testing::Test {
 protected:
  FaultStressTest() {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 2;
    env_ = workload::MakeTpch(gen);
    for (size_t i = 0; i < env_->workload->size(); ++i) {
      queries_.push_back({&env_->workload->query(i).bound, 1.0});
    }
    // Latency faults and retry backoffs must not slow the soak down.
    SetSleepForTest(&NoSleep);
  }
  ~FaultStressTest() override {
    SetSleepForTest(nullptr);
    FaultInjector::Global().Reset();
    InstallAmbientBudget(TimeBudget());
  }

  std::optional<workload::GeneratedWorkload> env_;
  std::vector<advisor::WeightedQuery> queries_;
};

TEST_F(FaultStressTest, ConcurrentTryCostUnderMixedFaults) {
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("{\"seed\":11};"
                             "{\"site\":\"whatif.cost\",\"kind\":\"error\","
                             "\"p\":0.3};"
                             "{\"site\":\"*\",\"kind\":\"latency\",\"p\":0.2,"
                             "\"ms\":0.1}")
                  .ok());
  engine::WhatIfOptimizer what_if(env_->cost_model.get());
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 200;
  std::atomic<uint64_t> ok_calls{0};
  std::atomic<uint64_t> unavailable{0};
  std::atomic<uint64_t> unexpected{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const size_t q = static_cast<size_t>(t * kItersPerThread + i) %
                         env_->workload->size();
        const StatusOr<double> cost = what_if.TryCost(
            env_->workload->query(q).bound, engine::Configuration());
        if (cost.ok()) {
          ok_calls.fetch_add(1, std::memory_order_relaxed);
          EXPECT_GT(*cost, 0.0);
        } else if (cost.status().code() == StatusCode::kUnavailable) {
          unavailable.fetch_add(1, std::memory_order_relaxed);
        } else {
          unexpected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_EQ(ok_calls.load() + unavailable.load(),
            static_cast<uint64_t>(kThreads) * kItersPerThread);
  // Faults fired: the p=0.3 error rule guarantees misses saw failures
  // (first-touch of each query key cannot be a cache hit).
  EXPECT_GT(FaultInjector::Global().injected(), 0u);
  // Counter sanity: every kUnavailable return burned a full retry budget.
  const uint64_t per_failure =
      static_cast<uint64_t>(what_if.retry_policy().max_attempts - 1);
  EXPECT_GE(what_if.retry_attempts(), unavailable.load() * per_failure);
}

TEST_F(FaultStressTest, ConcurrentConfigureWhileInjecting) {
  // Reconfiguring mid-flight must never crash or deadlock (atomic
  // shared_ptr swap); decisions just come from whichever config is live.
  std::atomic<bool> stop{false};
  std::thread configurer([&] {
    int flip = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const char* spec =
          (flip++ & 1) != 0
              ? "{\"site\":\"stress.site\",\"kind\":\"error\",\"p\":1.0}"
              : "{\"site\":\"stress.site\",\"kind\":\"latency\",\"p\":1.0,"
                "\"ms\":0.01}";
      ASSERT_TRUE(FaultInjector::Global().Configure(spec).ok());
    }
  });
  std::vector<std::thread> injectors;
  for (int t = 0; t < 4; ++t) {
    injectors.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        // The stress is the call itself; the verdict is asserted after the
        // threads quiesce. NOLINTNEXTLINE(isum-unchecked-status)
        (void)CheckFault("stress.site");
      }
    });
  }
  for (std::thread& t : injectors) t.join();
  stop.store(true);
  configurer.join();
  // Configure() zeroes the injected counter, so assert only after the
  // configurer quiesced: the surviving config injects deterministically.
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("{\"site\":\"stress.site\",\"kind\":\"error\","
                             "\"p\":1.0}")
                  .ok());
  EXPECT_FALSE(CheckFault("stress.site").ok());
  EXPECT_EQ(FaultInjector::Global().injected(), 1u);
}

TEST_F(FaultStressTest, ParallelForCancellationDrains) {
  ThreadPool pool(4);
  const CancellationToken token = CancellationToken::Cancellable();
  std::atomic<size_t> started{0};
  constexpr size_t kTasks = 10'000;
  // Cancel from inside the batch: later indexes must be skipped and
  // ParallelFor must still return (no deadlock on the drain path).
  pool.ParallelFor(kTasks, [&](size_t i) {
    started.fetch_add(1, std::memory_order_relaxed);
    if (i == 5) token.Cancel();
  }, token);
  EXPECT_TRUE(token.cancelled());
  EXPECT_LT(started.load(), kTasks);  // the tail was skipped, not run
  // The pool stays usable for the next (uncancelled) batch.
  std::atomic<size_t> second{0};
  pool.ParallelFor(100, [&](size_t) {
    second.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(second.load(), 100u);
}

TEST_F(FaultStressTest, ParallelForPreCancelledRunsNothing) {
  ThreadPool pool(4);
  const CancellationToken token = CancellationToken::Cancellable();
  token.Cancel();
  std::atomic<size_t> ran{0};
  pool.ParallelFor(1000, [&](size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  }, token);
  // A fired token may let a few in-flight claims through, but the batch
  // must drain almost immediately.
  EXPECT_LE(ran.load(), pool.num_threads());
}

TEST_F(FaultStressTest, ParallelTuneUnderFaultsStaysValid) {
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("{\"seed\":29};"
                             "{\"site\":\"whatif.cost\",\"kind\":\"error\","
                             "\"p\":0.05}")
                  .ok());
  advisor::TuningOptions options;
  options.max_indexes = 6;
  options.num_threads = 4;
  advisor::DtaStyleAdvisor advisor(env_->cost_model.get());
  const advisor::TuningResult result = advisor.Tune(queries_, options);
  // Whatever the stop reason, the result must be internally consistent:
  // final cost never exceeds initial, configuration within bounds.
  EXPECT_LE(result.final_cost, result.initial_cost + 1e-9);
  EXPECT_LE(result.configuration.size(),
            static_cast<size_t>(options.max_indexes));
}

TEST_F(FaultStressTest, ConcurrentCompressionsUnderAmbientBudget) {
  // Several compressions race against one ambient budget; each must
  // return a valid (possibly truncated) result without interfering.
  InstallAmbientBudget(TimeBudget::After(0.005));
  std::vector<workload::CompressedWorkload> results(6);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < results.size(); ++t) {
    threads.emplace_back([&, t] {
      results[t] = core::Isum(&*env_->workload).Compress(10);
    });
  }
  for (std::thread& t : threads) t.join();
  for (const workload::CompressedWorkload& out : results) {
    EXPECT_LE(out.entries.size(), 10u);
    for (const auto& entry : out.entries) {
      EXPECT_LT(entry.query_index, env_->workload->size());
    }
  }
}

TEST_F(FaultStressTest, BudgetedTryCostStormNeverHangs) {
  // Budgets expiring mid-retry across threads: every call must return
  // promptly with OK, kUnavailable, or kDeadlineExceeded — nothing else,
  // and nothing may block on a backoff sleep past the deadline.
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("{\"seed\":3};"
                             "{\"site\":\"whatif.cost\",\"kind\":\"error\","
                             "\"p\":0.5}")
                  .ok());
  engine::WhatIfOptimizer what_if(env_->cost_model.get());
  std::atomic<uint64_t> bad_codes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        // Odd iterations run against an already-expired budget.
        const TimeBudget budget =
            (i & 1) != 0 ? TimeBudget::After(0.0) : TimeBudget();
        const size_t q =
            static_cast<size_t>(t * 100 + i) % env_->workload->size();
        const StatusOr<double> cost =
            what_if.TryCost(env_->workload->query(q).bound,
                            engine::Configuration(), budget);
        if (!cost.ok() &&
            cost.status().code() != StatusCode::kUnavailable &&
            cost.status().code() != StatusCode::kDeadlineExceeded) {
          bad_codes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad_codes.load(), 0u);
}

TEST_F(FaultStressTest, ReplayDeterminismSurvivesThreadCount) {
  // The fault decision stream is per-site, not per-thread: single-threaded
  // and multi-threaded tuning under the same seed may interleave faults
  // differently, but re-running the same (seed, thread-count) pair must
  // reproduce the configuration bit-identically.
  const std::string spec =
      "{\"seed\":77};"
      "{\"site\":\"whatif.cost\",\"kind\":\"error\",\"p\":0.1}";
  advisor::TuningOptions options;
  options.max_indexes = 4;
  options.num_threads = 1;  // deterministic fault->call assignment
  advisor::DtaStyleAdvisor advisor(env_->cost_model.get());
  ASSERT_TRUE(FaultInjector::Global().Configure(spec).ok());
  const advisor::TuningResult first = advisor.Tune(queries_, options);
  ASSERT_TRUE(FaultInjector::Global().Configure(spec).ok());
  advisor::DtaStyleAdvisor replay(env_->cost_model.get());
  const advisor::TuningResult second = replay.Tune(queries_, options);
  EXPECT_EQ(first.configuration.StableHash(), second.configuration.StableHash());
  EXPECT_EQ(first.stop_reason, second.stop_reason);
  EXPECT_EQ(first.final_cost, second.final_cost);  // bit-identical
}

}  // namespace
}  // namespace isum
