// Tests for src/obs/exporter.h: the live telemetry exporter (Prometheus
// text over a minimal 127.0.0.1 HTTP listener + periodic snapshot files)
// and the MetricsRegistry snapshot/delta semantics it publishes. Suite
// names start with `Exporter` so the TSan CI job picks the concurrency
// tests up via its --gtest_filter.

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define ISUM_TEST_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "common/deadline.h"
#include "obs/export.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "tools/tracecat/tracecat.h"

namespace isum::obs {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

double SampleValue(const std::vector<tracecat::PromSample>& samples,
                   const char* name, const char* labels = "") {
  for (const auto& s : samples) {
    if (s.name == name && s.labels == labels) return s.value;
  }
  ADD_FAILURE() << "sample not found: " << name << " {" << labels << "}";
  return 0.0;
}

#ifdef ISUM_TEST_HAVE_SOCKETS
/// One-shot HTTP GET against 127.0.0.1:`port`; returns the raw response.
bool HttpGet(int port, const char* path, std::string* response) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request = std::string("GET ") + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  if (::write(fd, request.data(), request.size()) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return false;
  }
  response->clear();
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return !response->empty();
}
#endif

TEST(ExporterSnapshot, WritesFileAndRoundTripsThroughTracecat) {
  MetricsRegistry registry;
  registry.GetCounter("whatif.optimizer_calls")->Add(123);
  registry.GetGauge("pool.size")->Set(4.5);
  registry.GetHistogram("whatif.optimize_nanos")->Observe(1000);

  const std::string path = TempPath("exporter_snapshot.prom");
  MetricsExporterOptions options;
  options.snapshot_path = path;
  options.period_nanos = 3'600'000'000'000ull;  // only the startup tick
  MetricsExporter exporter(&registry, options);
  ASSERT_TRUE(exporter.Start().ok());
  exporter.Stop();
  // Startup tick + shutdown tick; >= 1 because Stop() can beat the worker's
  // first iteration (the shutdown tick alone still yields a complete file).
  EXPECT_GE(exporter.snapshots_written(), 1u);

  auto samples = tracecat::ParsePrometheusText(ReadAll(path));
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  EXPECT_EQ(SampleValue(samples.value(), "isum_whatif_optimizer_calls"),
            123.0);
  EXPECT_EQ(SampleValue(samples.value(), "isum_pool_size"), 4.5);
  EXPECT_EQ(
      SampleValue(samples.value(), "isum_whatif_optimize_nanos_count"), 1.0);
  // The exporter publishes the ambient budget every tick (-1 = unlimited).
  EXPECT_EQ(SampleValue(samples.value(), "isum_budget_remaining_seconds"),
            -1.0);
}

TEST(ExporterGolden, PrometheusTextShapeIsStable) {
  // Golden for the exposition format itself (counters and gauges are exact;
  // histogram quantiles go through the round-trip test above instead).
  MetricsRegistry registry;
  registry.GetCounter("compress.runs")->Add(3);
  registry.GetGauge("budget.remaining_seconds")->Set(-1.0);
  EXPECT_EQ(PrometheusText(registry.Snapshot()),
            "# TYPE isum_compress_runs counter\n"
            "isum_compress_runs 3\n"
            "# TYPE isum_budget_remaining_seconds gauge\n"
            "isum_budget_remaining_seconds -1\n");
}

#ifdef ISUM_TEST_HAVE_SOCKETS
TEST(ExporterHttp, ServesMetricsAndHealthz) {
  MetricsRegistry registry;
  registry.GetCounter("advisor.tuning_runs")->Add(7);

  MetricsExporterOptions options;
  options.http_port = 0;  // ephemeral
  MetricsExporter exporter(&registry, options);
  ASSERT_TRUE(exporter.Start().ok());
  ASSERT_GT(exporter.port(), 0);

  std::string response;
  ASSERT_TRUE(HttpGet(exporter.port(), "/metrics", &response));
  EXPECT_EQ(response.compare(0, 15, "HTTP/1.1 200 OK"), 0) << response;
  const size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  auto samples = tracecat::ParsePrometheusText(response.substr(body_at + 4));
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  EXPECT_EQ(SampleValue(samples.value(), "isum_advisor_tuning_runs"), 7.0);

  ASSERT_TRUE(HttpGet(exporter.port(), "/healthz", &response));
  EXPECT_NE(response.find("ok"), std::string::npos);

  ASSERT_TRUE(HttpGet(exporter.port(), "/nope", &response));
  EXPECT_EQ(response.compare(0, 12, "HTTP/1.1 404"), 0) << response;

  EXPECT_GE(exporter.requests_served(), 3u);
  exporter.Stop();
}

TEST(ExporterHttp, StartFailsCleanlyOnBusyPort) {
  MetricsRegistry registry;
  MetricsExporterOptions options;
  options.http_port = 0;
  MetricsExporter first(&registry, options);
  ASSERT_TRUE(first.Start().ok());

  MetricsExporterOptions busy;
  busy.http_port = first.port();
  MetricsExporter second(&registry, busy);
  EXPECT_FALSE(second.Start().ok());
  first.Stop();
}
#endif

TEST(ExporterBudget, ExpiredAmbientBudgetStopsTheWorker) {
  // Once the ambient budget expires, the worker writes one final snapshot
  // (with the gauge at 0) and exits on its own; Stop() then only joins.
  InstallAmbientBudget(TimeBudget::After(0.0));
  MetricsRegistry registry;
  const std::string path = TempPath("exporter_budget.prom");
  MetricsExporterOptions options;
  options.snapshot_path = path;
  options.period_nanos = 1'000'000;  // 1ms: would write thousands if alive
  MetricsExporter exporter(&registry, options);
  ASSERT_TRUE(exporter.Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const uint64_t after_expiry = exporter.snapshots_written();
  EXPECT_LE(after_expiry, 2u);  // the budget-expired tick, not one per ms
  exporter.Stop();
  InstallAmbientBudget(TimeBudget());  // restore unlimited for other tests

  auto samples = tracecat::ParsePrometheusText(ReadAll(path));
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  EXPECT_EQ(SampleValue(samples.value(), "isum_budget_remaining_seconds"),
            0.0);
}

TEST(ExporterRegistry, SnapshotAndDeltaUnderConcurrentWriters) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("stress.counter");
  Histogram* histogram = registry.GetHistogram("stress.histogram");
  const MetricsSnapshot before = registry.Snapshot();

  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50'000;
  std::atomic<bool> done{false};
  // Reader thread: snapshots concurrently with the writers; every observed
  // value must be a valid intermediate (never above the final total).
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const MetricsSnapshot s = registry.Snapshot();
      EXPECT_LE(s.CounterValue("stress.counter"), kThreads * kPerThread);
      EXPECT_LE(s.HistogramCount("stress.histogram"),
                kThreads * kPerThread);
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        histogram->Observe(100);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  const MetricsSnapshot after = registry.Snapshot();
  const MetricsSnapshot delta = MetricsSnapshot::Delta(before, after);
  EXPECT_EQ(delta.CounterValue("stress.counter"), kThreads * kPerThread);
  EXPECT_EQ(delta.HistogramCount("stress.histogram"), kThreads * kPerThread);
}

}  // namespace
}  // namespace isum::obs
