// Tests for the procedural template machinery (recipe generation +
// instantiation) and the star-schema builder behind TPC-DS/DSB.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "sql/binder.h"
#include "sql/parser.h"
#include "sql/templatizer.h"
#include "workload/generator/star_schema.h"

namespace isum::workload::gen {
namespace {

class RecipeTest : public ::testing::Test {
 protected:
  RecipeTest() : stats_(&catalog_) {
    Rng rng(7);
    graph_ = BuildStarSchema(&catalog_, &stats_, /*scale=*/1.0,
                             /*zipf_skew=*/0.0, rng);
  }

  catalog::Catalog catalog_;
  stats::StatsManager stats_;
  SchemaGraph graph_;
};

TEST_F(RecipeTest, StarSchemaHas24Tables) {
  EXPECT_EQ(catalog_.num_tables(), 24u);
  EXPECT_EQ(graph_.fact_tables.size(), 7u);  // 3 sales, 3 returns, inventory
  EXPECT_FALSE(graph_.edges.empty());
  EXPECT_FALSE(graph_.filterable.empty());
  EXPECT_FALSE(graph_.groupable.empty());
  EXPECT_FALSE(graph_.measures.empty());
}

TEST_F(RecipeTest, GraphReferencesResolveInCatalog) {
  for (const JoinEdge& e : graph_.edges) {
    EXPECT_TRUE(catalog_.ResolveColumn(e.left_table, e.left_column).valid())
        << e.left_table << "." << e.left_column;
    EXPECT_TRUE(catalog_.ResolveColumn(e.right_table, e.right_column).valid())
        << e.right_table << "." << e.right_column;
  }
  for (const auto& fc : graph_.filterable) {
    EXPECT_TRUE(catalog_.ResolveColumn(fc.table, fc.column).valid());
  }
  for (const auto& [t, c] : graph_.measures) {
    EXPECT_TRUE(catalog_.ResolveColumn(t, c).valid());
  }
}

TEST_F(RecipeTest, FactScalingOnlyAffectsFacts) {
  catalog::Catalog big_cat;
  stats::StatsManager big_stats(&big_cat);
  Rng rng(7);
  BuildStarSchema(&big_cat, &big_stats, /*scale=*/2.0, 0.0, rng);
  EXPECT_EQ(big_cat.FindTable("store_sales")->row_count(),
            2 * catalog_.FindTable("store_sales")->row_count());
  EXPECT_EQ(big_cat.FindTable("item")->row_count(),
            catalog_.FindTable("item")->row_count());
}

TEST_F(RecipeTest, GeneratedRecipesAreConnectedAndDistinct) {
  RecipeGenOptions options;
  options.min_joins = 1;
  options.max_joins = 4;
  Rng rng(11);
  const std::vector<TemplateRecipe> recipes =
      GenerateRecipes(graph_, 50, options, rng);
  ASSERT_EQ(recipes.size(), 50u);

  std::set<std::string> names;
  for (const TemplateRecipe& r : recipes) {
    EXPECT_TRUE(names.insert(r.name).second);
    // Join edges connect exactly the recipe's tables: walk reachability.
    ASSERT_FALSE(r.tables.empty());
    std::unordered_set<std::string> reach = {r.tables[0]};
    bool progress = true;
    while (progress) {
      progress = false;
      for (const JoinEdge& e : r.joins) {
        if (reach.contains(e.left_table) && !reach.contains(e.right_table)) {
          reach.insert(e.right_table);
          progress = true;
        }
        if (reach.contains(e.right_table) && !reach.contains(e.left_table)) {
          reach.insert(e.left_table);
          progress = true;
        }
      }
    }
    EXPECT_EQ(reach.size(), r.tables.size()) << r.name;
    // Filters reference participating tables only.
    for (const FilterSlot& f : r.filters) {
      EXPECT_TRUE(std::find(r.tables.begin(), r.tables.end(), f.table) !=
                  r.tables.end());
    }
  }
}

TEST_F(RecipeTest, SingleFactRuleHolds) {
  RecipeGenOptions options;
  options.min_joins = 2;
  options.max_joins = 6;
  Rng rng(13);
  const std::vector<TemplateRecipe> recipes =
      GenerateRecipes(graph_, 40, options, rng);
  const std::set<std::string> facts(graph_.fact_tables.begin(),
                                    graph_.fact_tables.end());
  for (const TemplateRecipe& r : recipes) {
    int fact_count = 0;
    for (const std::string& t : r.tables) fact_count += facts.contains(t);
    EXPECT_LE(fact_count, 1) << r.name;
  }
}

TEST_F(RecipeTest, MultipleFactsAllowedWhenOptedIn) {
  RecipeGenOptions options;
  options.min_joins = 3;
  options.max_joins = 6;
  options.allow_multiple_facts = true;
  Rng rng(13);
  const std::vector<TemplateRecipe> recipes =
      GenerateRecipes(graph_, 40, options, rng);
  const std::set<std::string> facts(graph_.fact_tables.begin(),
                                    graph_.fact_tables.end());
  int multi = 0;
  for (const TemplateRecipe& r : recipes) {
    int fact_count = 0;
    for (const std::string& t : r.tables) fact_count += facts.contains(t);
    multi += (fact_count > 1);
  }
  EXPECT_GT(multi, 0);
}

TEST_F(RecipeTest, ClassKnobsShapeRecipes) {
  Rng rng(17);
  RecipeGenOptions spj;
  spj.aggregate_probability = 0.0;
  for (const TemplateRecipe& r : GenerateRecipes(graph_, 20, spj, rng)) {
    EXPECT_TRUE(r.group_by.empty());
    EXPECT_TRUE(r.aggregates.empty());
  }
  RecipeGenOptions agg;
  agg.aggregate_probability = 1.0;
  for (const TemplateRecipe& r : GenerateRecipes(graph_, 20, agg, rng)) {
    EXPECT_FALSE(r.aggregates.empty());
  }
}

TEST_F(RecipeTest, InstantiationParsesBindsAndHitsSelectivityBand) {
  RecipeGenOptions options;
  options.min_joins = 0;
  options.max_joins = 2;
  Rng rng(19);
  const std::vector<TemplateRecipe> recipes =
      GenerateRecipes(graph_, 15, options, rng);
  sql::Binder binder(&catalog_, &stats_);
  for (const TemplateRecipe& recipe : recipes) {
    Rng inst_rng(23);
    for (int i = 0; i < 3; ++i) {
      const std::string sql =
          InstantiateSql(recipe, catalog_, stats_, inst_rng);
      auto stmt = sql::ParseSelect(sql);
      ASSERT_TRUE(stmt.ok()) << stmt.status().ToString() << "\n" << sql;
      auto bound = binder.Bind(*stmt, sql);
      ASSERT_TRUE(bound.ok()) << bound.status().ToString() << "\n" << sql;
      // Range filters should land within ~an order of magnitude of the
      // recipe's selectivity band (histogram quantiles are approximate).
      for (const auto& f : bound->filters) {
        if (f.op == sql::PredicateOp::kBetween) {
          EXPECT_LT(f.selectivity, 0.98);
        }
      }
    }
  }
}

TEST_F(RecipeTest, InstancesShareTemplateHash) {
  RecipeGenOptions options;
  Rng rng(29);
  const std::vector<TemplateRecipe> recipes =
      GenerateRecipes(graph_, 5, options, rng);
  for (const TemplateRecipe& recipe : recipes) {
    Rng inst_rng(31);
    std::set<uint64_t> hashes;
    for (int i = 0; i < 3; ++i) {
      const std::string sql =
          InstantiateSql(recipe, catalog_, stats_, inst_rng);
      auto stmt = sql::ParseSelect(sql);
      ASSERT_TRUE(stmt.ok());
      hashes.insert(sql::TemplateHash(*stmt));
    }
    EXPECT_EQ(hashes.size(), 1u) << recipe.name;
  }
}

TEST_F(RecipeTest, ZipfSkewChangesFactStats) {
  catalog::Catalog skew_cat;
  stats::StatsManager skew_stats(&skew_cat);
  Rng rng(7);
  BuildStarSchema(&skew_cat, &skew_stats, 1.0, /*zipf_skew=*/1.4, rng);
  // Hot values of a skewed fact attribute have much higher equality
  // selectivity than under the uniform build.
  const catalog::ColumnId uniform_col =
      catalog_.ResolveColumn("store_sales", "ss_quantity");
  const catalog::ColumnId skew_col =
      skew_cat.ResolveColumn("store_sales", "ss_quantity");
  double max_uniform = 0.0, max_skew = 0.0;
  for (int q = 0; q <= 10; ++q) {
    max_uniform = std::max(
        max_uniform, stats_.SelectivityEquals(
                         uniform_col, stats_.ValueAtQuantile(uniform_col, q / 10.0)));
    max_skew = std::max(
        max_skew, skew_stats.SelectivityEquals(
                      skew_col, skew_stats.ValueAtQuantile(skew_col, q / 10.0)));
  }
  EXPECT_GT(max_skew, max_uniform * 2.0);
}

}  // namespace
}  // namespace isum::workload::gen
