// Edge-case sweep across modules: boundary inputs that the main test files
// don't reach (degenerate sizes, empty structures, extreme parameters).

#include <gtest/gtest.h>

#include <optional>

#include "baselines/gsum.h"
#include "baselines/kmedoid.h"
#include "baselines/simple.h"
#include "common/rng.h"
#include "core/isum.h"
#include "eval/pipeline.h"
#include "exec/executor.h"
#include "stats/histogram.h"
#include "workload/workload_factory.h"

namespace isum {
namespace {

// --- Degenerate randomness / statistics. ---

TEST(EdgeCases, ZipfSingleItem) {
  Rng rng(1);
  ZipfSampler zipf(1, 2.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 1u);
}

TEST(EdgeCases, HistogramSingleValueSample) {
  stats::Histogram h = stats::Histogram::FromSample({5.0, 5.0, 5.0}, 8, 300.0);
  EXPECT_NEAR(h.SelectivityEquals(5.0), 1.0, 1e-9);
  EXPECT_EQ(h.SelectivityEquals(6.0), 0.0);
  EXPECT_NEAR(h.SelectivityRange(0.0, 10.0), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.5), 5.0);
}

TEST(EdgeCases, HistogramMoreBucketsThanSamples) {
  stats::Histogram h = stats::Histogram::FromSample({1.0, 2.0}, 64, 100.0);
  EXPECT_LE(h.buckets().size(), 2u);
  EXPECT_NEAR(h.SelectivityRange(std::nullopt, std::nullopt), 1.0, 1e-9);
}

// --- Sparse vectors. ---

TEST(EdgeCases, SparseVectorEmptyOperations) {
  core::SparseVector empty;
  core::SparseVector other = core::SparseVector::FromPairs({{1, 1.0}});
  EXPECT_TRUE(empty.AllZero());
  EXPECT_EQ(core::WeightedJaccard(empty, other), 0.0);
  empty.AddScaled(other, 2.0);
  EXPECT_DOUBLE_EQ(empty.Get(1), 2.0);
  core::SparseVector again;
  again.ZeroWhere(other);   // no-op on empty
  again.SubtractFromAllClamped(1.0);
  EXPECT_TRUE(again.AllZero());
}

// --- Compression on tiny workloads. ---

class TinyWorkload : public ::testing::Test {
 protected:
  TinyWorkload() {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 1;
    gen.max_templates = 2;
    env_ = workload::MakeTpch(gen);
  }
  std::optional<workload::GeneratedWorkload> env_;
};

TEST_F(TinyWorkload, CompressKEqualsN) {
  core::Isum isum(env_->workload.get());
  const auto compressed = isum.Compress(2);
  EXPECT_EQ(compressed.size(), 2u);
}

TEST_F(TinyWorkload, CompressKGreaterThanN) {
  core::Isum isum(env_->workload.get());
  const auto compressed = isum.Compress(50);
  EXPECT_EQ(compressed.size(), 2u);  // capped at n
}

TEST_F(TinyWorkload, CompressKOne) {
  for (auto algorithm : {core::SelectionAlgorithm::kSummaryFeatures,
                         core::SelectionAlgorithm::kAllPairs}) {
    core::IsumOptions options;
    options.algorithm = algorithm;
    core::Isum isum(env_->workload.get(), options);
    const auto compressed = isum.Compress(1);
    ASSERT_EQ(compressed.size(), 1u);
    EXPECT_DOUBLE_EQ(compressed.entries[0].weight, 1.0);
  }
}

TEST_F(TinyWorkload, BaselinesOnTinyWorkloads) {
  baselines::UniformSamplingCompressor uniform(1);
  baselines::GsumCompressor gsum;
  baselines::KMedoidCompressor kmedoid(1);
  baselines::TopCostCompressor cost;
  baselines::StratifiedCompressor stratified(1);
  for (baselines::Compressor* c :
       std::initializer_list<baselines::Compressor*>{
           &uniform, &gsum, &kmedoid, &cost, &stratified}) {
    EXPECT_EQ(c->Compress(*env_->workload, 1).size(), 1u) << c->name();
    EXPECT_EQ(c->Compress(*env_->workload, 5).size(), 2u) << c->name();
  }
}

TEST_F(TinyWorkload, PipelineWithKOne) {
  advisor::TuningOptions tuning;
  tuning.max_indexes = 4;
  core::Isum isum(env_->workload.get());
  const auto result =
      eval::RunPipeline(*env_->workload, isum.Compress(1),
                        eval::MakeDtaTuner(*env_->workload, tuning), "ISUM");
  EXPECT_GE(result.improvement_percent, 0.0);
}

// --- Advisor extremes. ---

TEST_F(TinyWorkload, AdvisorWithZeroMaxIndexes) {
  std::vector<advisor::WeightedQuery> queries = {
      {&env_->workload->query(0).bound, 1.0}};
  advisor::TuningOptions options;
  options.max_indexes = 0;
  advisor::DtaStyleAdvisor advisor(env_->cost_model.get());
  const auto result = advisor.Tune(queries, options);
  EXPECT_TRUE(result.configuration.empty());
  EXPECT_DOUBLE_EQ(result.initial_cost, result.final_cost);
}

TEST_F(TinyWorkload, AdvisorWithZeroWeights) {
  std::vector<advisor::WeightedQuery> queries = {
      {&env_->workload->query(0).bound, 0.0},
      {&env_->workload->query(1).bound, 0.0}};
  advisor::DtaStyleAdvisor advisor(env_->cost_model.get());
  const auto result = advisor.Tune(queries);
  // No weighted improvement is possible; advisor must not loop or crash.
  EXPECT_DOUBLE_EQ(result.final_cost, 0.0);
}

// --- Execution extremes. ---

TEST(EdgeCases, ExecutorTinyTableAndCap) {
  workload::GeneratorOptions gen;
  gen.instances_per_template = 1;
  gen.max_templates = 3;
  gen.scale = 0.001;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  exec::Database db(env.catalog.get(), env.stats.get());
  db.MaterializeAll(/*max_rows_per_table=*/64, /*seed=*/1);
  exec::Executor executor(&db, /*tuple_cap=*/16);  // absurdly small cap
  engine::Optimizer opt(env.cost_model.get());
  for (size_t i = 0; i < env.workload->size(); ++i) {
    const auto plan =
        opt.Optimize(env.workload->query(i).bound, engine::Configuration());
    const auto run = executor.Execute(env.workload->query(i).bound, plan);
    EXPECT_GE(run.output_rows, 0.0);  // bounded, no crash; may truncate
  }
}

// --- Incremental-vs-k edge already covered; weights on duplicates. ---

TEST(EdgeCases, IdenticalQueriesShareEverything) {
  workload::GeneratorOptions gen;
  gen.instances_per_template = 1;
  gen.max_templates = 1;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  // Add the exact same SQL twice more.
  const std::string sql = env.workload->query(0).sql;
  ASSERT_TRUE(env.workload->AddQuery(sql).ok());
  ASSERT_TRUE(env.workload->AddQuery(sql).ok());
  EXPECT_EQ(env.workload->NumTemplates(), 1u);

  core::CompressionState state(*env.workload, {}, core::UtilityMode::kCostOnly);
  EXPECT_NEAR(state.Similarity(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(state.Similarity(1, 2), 1.0, 1e-12);
  // Selecting one covers the others entirely.
  state.SelectAndUpdate(0, core::UpdateStrategy::kUtilityAndFeatureZero);
  EXPECT_TRUE(state.features(1).AllZero());
  EXPECT_NEAR(state.utility(2), 0.0, 1e-12);
}

}  // namespace
}  // namespace isum
