// Tests for the contract macros in common/check.h. The default build defines
// NDEBUG (RelWithDebInfo), which is exactly the configuration where assert()
// vanishes — these tests pin down that ISUM_CHECK* do not.

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/status.h"

namespace isum {
namespace {

TEST(Check, PassingCheckIsSilent) {
  ISUM_CHECK(1 + 1 == 2);
  ISUM_CHECK_MSG(true, "never printed");
  int x = 3;
  ISUM_DCHECK(x == 3);
}

TEST(CheckDeathTest, FailingCheckAbortsEvenUnderNdebug) {
  EXPECT_DEATH(ISUM_CHECK(2 + 2 == 5), "check failed: 2 \\+ 2 == 5");
}

TEST(CheckDeathTest, FailingCheckMsgPrintsDetail) {
  EXPECT_DEATH(ISUM_CHECK_MSG(false, std::string("k=") + "42"),
               "check failed: false \\(k=42\\)");
}

TEST(Check, CheckOkPassesOnOkStatus) {
  ISUM_CHECK_OK(Status::OK());
  StatusOr<int> ok_value(7);
  ISUM_CHECK_OK(ok_value);
}

TEST(CheckDeathTest, CheckOkPrintsStatusMessage) {
  EXPECT_DEATH(ISUM_CHECK_OK(Status::InvalidArgument("bad knob")),
               "InvalidArgument: bad knob");
  StatusOr<int> err(Status::NotFound("no such index"));
  EXPECT_DEATH(ISUM_CHECK_OK(err), "NotFound: no such index");
}

TEST(CheckDeathTest, UnreachableAborts) {
  EXPECT_DEATH(ISUM_UNREACHABLE(), "unreachable code");
}

TEST(CheckDeathTest, StatusOrValueOnErrorAbortsEvenUnderNdebug) {
  // Regression: this used to be assert()-guarded, i.e. UB in release builds.
  StatusOr<int> err(Status::ParseError("broken SQL"));
  EXPECT_DEATH({ [[maybe_unused]] int v = err.value(); },
               "ParseError: broken SQL");
}

TEST(Check, DcheckIsCompiledOutUnderNdebug) {
  bool evaluated = false;
  auto touch = [&]() {
    evaluated = true;
    return true;
  };
  ISUM_DCHECK(touch());
#ifdef NDEBUG
  EXPECT_FALSE(evaluated);  // release: condition must not even be evaluated
#else
  EXPECT_TRUE(evaluated);
#endif
}

}  // namespace
}  // namespace isum
