// Unit tests for the SQL parser, including printer round-trip properties.

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/printer.h"

namespace isum::sql {
namespace {

SelectStatement MustParse(std::string_view sql) {
  auto result = ParseSelect(sql);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << "\nSQL: " << sql;
  return result.ok() ? std::move(result).value() : SelectStatement{};
}

TEST(Parser, MinimalSelectStar) {
  SelectStatement stmt = MustParse("SELECT * FROM t");
  ASSERT_EQ(stmt.select_list.size(), 1u);
  EXPECT_EQ(stmt.select_list[0].expr->kind(), ExpressionKind::kStar);
  ASSERT_EQ(stmt.from.size(), 1u);
  EXPECT_EQ(stmt.from[0].table_name, "t");
  EXPECT_EQ(stmt.where, nullptr);
}

TEST(Parser, SelectListWithAliases) {
  SelectStatement stmt = MustParse("SELECT a AS x, b y, c FROM t");
  ASSERT_EQ(stmt.select_list.size(), 3u);
  EXPECT_EQ(stmt.select_list[0].alias, "x");
  EXPECT_EQ(stmt.select_list[1].alias, "y");
  EXPECT_EQ(stmt.select_list[2].alias, "");
}

TEST(Parser, TableAliases) {
  SelectStatement stmt = MustParse("SELECT * FROM orders o, lineitem AS l");
  ASSERT_EQ(stmt.from.size(), 2u);
  EXPECT_EQ(stmt.from[0].alias, "o");
  EXPECT_EQ(stmt.from[1].alias, "l");
  EXPECT_EQ(stmt.from[1].effective_name(), "l");
}

TEST(Parser, WherePrecedenceAndOverOr) {
  SelectStatement stmt = MustParse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_NE(stmt.where, nullptr);
  const auto& root = static_cast<const BinaryExpression&>(*stmt.where);
  EXPECT_EQ(root.op(), BinaryOp::kOr);  // AND binds tighter
}

TEST(Parser, ArithmeticPrecedence) {
  SelectStatement stmt = MustParse("SELECT a + b * c FROM t");
  const auto& root =
      static_cast<const BinaryExpression&>(*stmt.select_list[0].expr);
  EXPECT_EQ(root.op(), BinaryOp::kPlus);
  EXPECT_EQ(static_cast<const BinaryExpression&>(root.rhs()).op(),
            BinaryOp::kMul);
}

TEST(Parser, ComparisonOperators) {
  for (const char* op : {"=", "<>", "<", "<=", ">", ">="}) {
    SelectStatement stmt =
        MustParse(std::string("SELECT * FROM t WHERE a ") + op + " 1");
    EXPECT_EQ(stmt.where->kind(), ExpressionKind::kBinary);
  }
}

TEST(Parser, InListAndNotIn) {
  SelectStatement stmt = MustParse("SELECT * FROM t WHERE a IN (1, 2, 3)");
  const auto& in = static_cast<const InExpression&>(*stmt.where);
  EXPECT_EQ(in.values().size(), 3u);
  EXPECT_FALSE(in.negated());
  SelectStatement stmt2 = MustParse("SELECT * FROM t WHERE a NOT IN ('x')");
  EXPECT_TRUE(static_cast<const InExpression&>(*stmt2.where).negated());
}

TEST(Parser, BetweenBindsAndCorrectly) {
  SelectStatement stmt =
      MustParse("SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b = 2");
  // Root must be AND(between, eq), not between(a, 1, and(...)).
  const auto& root = static_cast<const BinaryExpression&>(*stmt.where);
  EXPECT_EQ(root.op(), BinaryOp::kAnd);
  EXPECT_EQ(root.lhs().kind(), ExpressionKind::kBetween);
}

TEST(Parser, LikeAndNotLike) {
  SelectStatement stmt = MustParse("SELECT * FROM t WHERE name LIKE 'abc%'");
  const auto& like = static_cast<const LikeExpression&>(*stmt.where);
  EXPECT_EQ(like.pattern(), "abc%");
  SelectStatement stmt2 = MustParse("SELECT * FROM t WHERE name NOT LIKE '%x'");
  EXPECT_TRUE(static_cast<const LikeExpression&>(*stmt2.where).negated());
}

TEST(Parser, IsNullVariants) {
  SelectStatement s1 = MustParse("SELECT * FROM t WHERE a IS NULL");
  EXPECT_FALSE(static_cast<const IsNullExpression&>(*s1.where).negated());
  SelectStatement s2 = MustParse("SELECT * FROM t WHERE a IS NOT NULL");
  EXPECT_TRUE(static_cast<const IsNullExpression&>(*s2.where).negated());
}

TEST(Parser, FunctionCallsAndDistinct) {
  SelectStatement stmt =
      MustParse("SELECT COUNT(*), SUM(a + b), COUNT(DISTINCT c) FROM t");
  ASSERT_EQ(stmt.select_list.size(), 3u);
  const auto& count =
      static_cast<const FunctionCallExpression&>(*stmt.select_list[0].expr);
  EXPECT_EQ(count.name(), "COUNT");
  const auto& distinct =
      static_cast<const FunctionCallExpression&>(*stmt.select_list[2].expr);
  EXPECT_TRUE(distinct.distinct());
}

TEST(Parser, GroupByHavingOrderByLimit) {
  SelectStatement stmt = MustParse(
      "SELECT a, COUNT(*) FROM t WHERE b > 0 GROUP BY a HAVING COUNT(*) > 5 "
      "ORDER BY a DESC LIMIT 10");
  EXPECT_EQ(stmt.group_by.size(), 1u);
  ASSERT_NE(stmt.having, nullptr);
  ASSERT_EQ(stmt.order_by.size(), 1u);
  EXPECT_TRUE(stmt.order_by[0].descending);
  EXPECT_EQ(stmt.limit, 10);
}

TEST(Parser, ExplicitJoinNormalizedIntoWhere) {
  SelectStatement stmt = MustParse(
      "SELECT * FROM a JOIN b ON a.x = b.y INNER JOIN c ON b.z = c.w "
      "WHERE a.v = 1");
  EXPECT_EQ(stmt.from.size(), 3u);
  // WHERE now holds the original predicate AND both join conditions.
  int ands = 0;
  std::function<void(const Expression&)> walk = [&](const Expression& e) {
    if (e.kind() == ExpressionKind::kBinary) {
      const auto& bin = static_cast<const BinaryExpression&>(e);
      if (bin.op() == BinaryOp::kAnd) {
        ++ands;
        walk(bin.lhs());
        walk(bin.rhs());
      }
    }
  };
  walk(*stmt.where);
  EXPECT_EQ(ands, 2);
}

TEST(Parser, LeftOuterJoinAccepted) {
  SelectStatement stmt =
      MustParse("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y");
  EXPECT_EQ(stmt.from.size(), 2u);
}

TEST(Parser, QualifiedColumnRefs) {
  SelectStatement stmt = MustParse("SELECT t.a FROM t WHERE t.b = 1");
  const auto& ref =
      static_cast<const ColumnRefExpression&>(*stmt.select_list[0].expr);
  EXPECT_EQ(ref.table(), "t");
  EXPECT_EQ(ref.column(), "a");
}

TEST(Parser, NegativeNumbersFold) {
  SelectStatement stmt = MustParse("SELECT * FROM t WHERE a > -5");
  const auto& cmp = static_cast<const BinaryExpression&>(*stmt.where);
  const auto& lit = static_cast<const LiteralExpression&>(cmp.rhs());
  EXPECT_DOUBLE_EQ(lit.number(), -5.0);
}

TEST(Parser, NotPredicate) {
  SelectStatement stmt = MustParse("SELECT * FROM t WHERE NOT a = 1");
  EXPECT_EQ(stmt.where->kind(), ExpressionKind::kUnaryNot);
}

TEST(Parser, DistinctSelect) {
  EXPECT_TRUE(MustParse("SELECT DISTINCT a FROM t").distinct);
  EXPECT_FALSE(MustParse("SELECT a FROM t").distinct);
}

TEST(Parser, TrailingSemicolonOk) {
  MustParse("SELECT * FROM t;");
}

// --- Error cases. ---

class ParserErrors : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserErrors, Rejected) {
  auto result = ParseSelect(GetParam());
  EXPECT_FALSE(result.ok()) << "should reject: " << GetParam();
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BadSql, ParserErrors,
    ::testing::Values("SELECT", "SELECT FROM t", "SELECT * FROM",
                      "SELECT * FROM t WHERE", "SELECT * FROM t GROUP",
                      "SELECT * FROM t LIMIT x", "SELECT a b c FROM t",
                      "SELECT * FROM t WHERE a NOT 5",
                      "SELECT * FROM t WHERE a IN 1",
                      "SELECT * FROM t WHERE a BETWEEN 1", "FROM t",
                      "SELECT * FROM t extra garbage ("));

// --- Printer round-trip property: print(parse(s)) is a fixed point. ---

class ParserRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRoundTrip, PrintParsePrintIsStable) {
  SelectStatement first = MustParse(GetParam());
  const std::string printed = StatementToSql(first);
  SelectStatement second = MustParse(printed);
  EXPECT_EQ(printed, StatementToSql(second)) << "original: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Statements, ParserRoundTrip,
    ::testing::Values(
        "SELECT * FROM t",
        "SELECT a, b AS x FROM t WHERE a = 1 AND b < 2.5",
        "SELECT COUNT(*) FROM t WHERE a IN (1, 2, 3) OR b IS NULL",
        "SELECT a, SUM(b * c) FROM t, u WHERE t.id = u.id GROUP BY a "
        "ORDER BY a DESC LIMIT 5",
        "SELECT * FROM t WHERE name LIKE 'pre%' AND d BETWEEN '2020-01-01' "
        "AND '2020-06-30'",
        "SELECT DISTINCT a FROM t WHERE NOT (a = 1 OR a = 2)",
        "SELECT AVG(x) FROM t WHERE s = 'it''s quoted'"));

}  // namespace
}  // namespace isum::sql
