// Unit tests for query templatization (§7 template identity).

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/templatizer.h"

namespace isum::sql {
namespace {

uint64_t HashOf(const std::string& sql) {
  auto stmt = ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  return TemplateHash(*stmt);
}

TEST(Templatizer, SameSkeletonDifferentLiteralsMatch) {
  EXPECT_EQ(HashOf("SELECT a FROM t WHERE b = 1"),
            HashOf("SELECT a FROM t WHERE b = 999"));
  EXPECT_EQ(HashOf("SELECT a FROM t WHERE s = 'x' AND d > '2020-01-01'"),
            HashOf("SELECT a FROM t WHERE s = 'y' AND d > '1999-12-31'"));
}

TEST(Templatizer, DifferentColumnsDiffer) {
  EXPECT_NE(HashOf("SELECT a FROM t WHERE b = 1"),
            HashOf("SELECT a FROM t WHERE c = 1"));
}

TEST(Templatizer, DifferentOperatorsDiffer) {
  EXPECT_NE(HashOf("SELECT a FROM t WHERE b = 1"),
            HashOf("SELECT a FROM t WHERE b < 1"));
}

TEST(Templatizer, DifferentTablesDiffer) {
  EXPECT_NE(HashOf("SELECT a FROM t WHERE b = 1"),
            HashOf("SELECT a FROM u WHERE b = 1"));
}

TEST(Templatizer, LikePatternsAreParameters) {
  EXPECT_EQ(HashOf("SELECT a FROM t WHERE s LIKE 'x%'"),
            HashOf("SELECT a FROM t WHERE s LIKE 'completely-different%'"));
}

TEST(Templatizer, LimitValueIsParameter) {
  EXPECT_EQ(HashOf("SELECT a FROM t LIMIT 5"),
            HashOf("SELECT a FROM t LIMIT 500"));
  EXPECT_NE(HashOf("SELECT a FROM t LIMIT 5"), HashOf("SELECT a FROM t"));
}

TEST(Templatizer, InListLiteralsMaskedButArityKept) {
  EXPECT_EQ(HashOf("SELECT a FROM t WHERE b IN (1, 2)"),
            HashOf("SELECT a FROM t WHERE b IN (8, 9)"));
  EXPECT_NE(HashOf("SELECT a FROM t WHERE b IN (1, 2)"),
            HashOf("SELECT a FROM t WHERE b IN (1, 2, 3)"));
}

TEST(Templatizer, BetweenBoundsMasked) {
  EXPECT_EQ(HashOf("SELECT a FROM t WHERE b BETWEEN 1 AND 2"),
            HashOf("SELECT a FROM t WHERE b BETWEEN 100 AND 3000"));
}

TEST(Templatizer, TemplateTextIsHumanReadable) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE b = 42 AND c LIKE 'x%'");
  const std::string text = TemplateText(*stmt);
  EXPECT_NE(text.find("'?'"), std::string::npos);
  EXPECT_EQ(text.find("42"), std::string::npos);
  EXPECT_EQ(text.find("x%"), std::string::npos);
}

TEST(Templatizer, GroupOrderPreservedInTemplate) {
  EXPECT_NE(HashOf("SELECT a, COUNT(*) FROM t GROUP BY a"),
            HashOf("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a"));
}

}  // namespace
}  // namespace isum::sql
