// Tests for the executor's expression interpreter (exact evaluation of
// retained complex predicates).

#include <gtest/gtest.h>

#include <unordered_map>

#include "catalog/schema_builder.h"
#include "exec/expr_eval.h"
#include "sql/parser.h"

namespace isum::exec {
namespace {

class ExprEvalTest : public ::testing::Test {
 protected:
  ExprEvalTest() {
    catalog::SchemaBuilder b(&cat_);
    b.Table("t", 10)
        .Col("a", catalog::ColumnType::kInt)
        .Col("b", catalog::ColumnType::kInt);
    b.Table("u", 10).Col("x", catalog::ColumnType::kInt);
    aliases_["t"] = cat_.FindTable("t")->id();
    aliases_["u"] = cat_.FindTable("u")->id();
    values_[cat_.ResolveColumn("t", "a")] = 3.0;
    values_[cat_.ResolveColumn("t", "b")] = 7.0;
    values_[cat_.ResolveColumn("u", "x")] = 7.0;
  }

  /// Evaluates the WHERE clause of "SELECT * FROM t, u WHERE <cond>".
  std::optional<bool> Eval(const std::string& condition) {
    auto stmt = sql::ParseSelect("SELECT * FROM t, u WHERE " + condition);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    ExpressionEvaluator evaluator(&cat_, &aliases_);
    return evaluator.Boolean(
        *stmt->where, [this](catalog::ColumnId c) -> std::optional<double> {
          auto it = values_.find(c);
          if (it == values_.end()) return std::nullopt;
          return it->second;
        });
  }

  catalog::Catalog cat_;
  std::unordered_map<std::string, catalog::TableId> aliases_;
  std::unordered_map<catalog::ColumnId, double> values_;
};

TEST_F(ExprEvalTest, Comparisons) {
  EXPECT_EQ(Eval("a = 3"), true);
  EXPECT_EQ(Eval("a <> 3"), false);
  EXPECT_EQ(Eval("a < b"), true);          // 3 < 7, column vs column
  EXPECT_EQ(Eval("t.b >= u.x"), true);     // qualified, cross-table
  EXPECT_EQ(Eval("b > 100"), false);
}

TEST_F(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(Eval("a + b = 10"), true);
  EXPECT_EQ(Eval("b - a > 3"), true);
  EXPECT_EQ(Eval("a * b = 21"), true);
  EXPECT_EQ(Eval("b / a > 2"), true);
  EXPECT_EQ(Eval("a / 0 = 1"), std::nullopt);  // division by zero: opaque
}

TEST_F(ExprEvalTest, BooleanConnectives) {
  EXPECT_EQ(Eval("a = 3 AND b = 7"), true);
  EXPECT_EQ(Eval("a = 3 AND b = 8"), false);
  EXPECT_EQ(Eval("a = 9 OR b = 7"), true);
  EXPECT_EQ(Eval("NOT a = 3"), false);
  EXPECT_EQ(Eval("NOT (a = 1 OR b = 2)"), true);
}

TEST_F(ExprEvalTest, InAndBetween) {
  EXPECT_EQ(Eval("a IN (1, 2, 3)"), true);
  EXPECT_EQ(Eval("a NOT IN (1, 2, 3)"), false);
  EXPECT_EQ(Eval("b BETWEEN 5 AND 9"), true);
  EXPECT_EQ(Eval("b NOT BETWEEN 5 AND 9"), false);
  EXPECT_EQ(Eval("a BETWEEN b AND 10"), false);  // bounds may be columns
}

TEST_F(ExprEvalTest, OpaqueConstructsReturnNullopt) {
  EXPECT_EQ(Eval("a LIKE 'x%'"), std::nullopt);
  EXPECT_EQ(Eval("a IS NULL"), std::nullopt);
  EXPECT_EQ(Eval("nosuch = 1"), std::nullopt);
  EXPECT_EQ(Eval("t.nosuch = 1"), std::nullopt);
}

TEST_F(ExprEvalTest, DateLiteralsEncode) {
  values_[cat_.ResolveColumn("t", "a")] = 18262.0;  // 2020-01-01
  EXPECT_EQ(Eval("a = '2020-01-01'"), true);
  EXPECT_EQ(Eval("a < '2021-01-01'"), true);
}

TEST_F(ExprEvalTest, MissingValueIsOpaqueNotFalse) {
  // The ValueFn can decline (e.g. column of a table not in the tuple yet).
  auto stmt = sql::ParseSelect("SELECT * FROM t, u WHERE u.x = 7");
  ExpressionEvaluator evaluator(&cat_, &aliases_);
  auto verdict = evaluator.Boolean(
      *stmt->where,
      [](catalog::ColumnId) -> std::optional<double> { return std::nullopt; });
  EXPECT_EQ(verdict, std::nullopt);
}

}  // namespace
}  // namespace isum::exec
