// Tests for the partitioning-advisor extension and Query-Store persistence.

#include <gtest/gtest.h>

#include <optional>

#include "partition/partition_advisor.h"
#include "workload/query_store.h"
#include "workload/workload_factory.h"

namespace isum {
namespace {

class PartitionTest : public ::testing::Test {
 protected:
  PartitionTest() {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 2;
    env_ = workload::MakeTpch(gen);
    for (size_t i = 0; i < env_->workload->size(); ++i) {
      queries_.push_back({&env_->workload->query(i).bound, 1.0});
    }
  }

  std::optional<workload::GeneratedWorkload> env_;
  std::vector<advisor::WeightedQuery> queries_;
};

TEST_F(PartitionTest, EmptySchemeIsBaseCost) {
  partition::PartitioningScheme empty;
  for (size_t i = 0; i < 5; ++i) {
    const double base = env_->workload->query(i).base_cost;
    EXPECT_NEAR(partition::CostWithPartitioning(env_->workload->query(i).bound,
                                                empty, *env_->cost_model),
                base, base * 1e-9);
  }
}

TEST_F(PartitionTest, PruningReducesCostOnlyWithMatchingFilter) {
  // Partition lineitem on l_shipdate: date-filtered queries get cheaper,
  // queries not touching lineitem stay identical.
  partition::PartitioningScheme scheme;
  const catalog::ColumnId shipdate =
      env_->catalog->ResolveColumn("lineitem", "l_shipdate");
  scheme.columns[shipdate.table] = shipdate;

  int cheaper = 0;
  for (size_t i = 0; i < env_->workload->size(); ++i) {
    const sql::BoundQuery& q = env_->workload->query(i).bound;
    const double base = env_->workload->query(i).base_cost;
    const double with =
        partition::CostWithPartitioning(q, scheme, *env_->cost_model);
    EXPECT_LE(with, base + 1e-6);
    bool filters_shipdate = false;
    for (const auto& f : q.filters) {
      filters_shipdate |= (f.column == shipdate && f.sargable);
    }
    if (!q.ReferencesTable(shipdate.table) || !filters_shipdate) {
      EXPECT_NEAR(with, base, base * 1e-9) << env_->workload->query(i).sql;
    } else if (with < base * 0.999) {
      ++cheaper;
    }
  }
  EXPECT_GT(cheaper, 3);
}

TEST_F(PartitionTest, PruningFloorIsOnePartition) {
  partition::PartitioningScheme scheme;
  scheme.partitions_per_table = 2;  // coarse partitions prune at most 50%
  const catalog::ColumnId shipdate =
      env_->catalog->ResolveColumn("lineitem", "l_shipdate");
  scheme.columns[shipdate.table] = shipdate;
  partition::PartitioningScheme fine = scheme;
  fine.partitions_per_table = 1024;
  for (size_t i = 0; i < env_->workload->size(); ++i) {
    const sql::BoundQuery& q = env_->workload->query(i).bound;
    EXPECT_LE(partition::CostWithPartitioning(q, fine, *env_->cost_model),
              partition::CostWithPartitioning(q, scheme, *env_->cost_model) +
                  1e-6);
  }
}

TEST_F(PartitionTest, AdvisorImprovesAndRespectsLimit) {
  partition::PartitionAdvisor advisor(env_->cost_model.get());
  partition::PartitionTuningOptions options;
  options.max_partitioned_tables = 3;
  const partition::PartitionTuningResult result =
      advisor.Tune(queries_, options);
  EXPECT_LE(result.scheme.columns.size(), 3u);
  EXPECT_GT(result.scheme.columns.size(), 0u);
  EXPECT_LT(result.final_cost, result.initial_cost);
  // One partitioning column per table by construction.
  for (const auto& [table, column] : result.scheme.columns) {
    EXPECT_EQ(column.table, table);
  }
}

TEST_F(PartitionTest, WeightsSteerTheChoice) {
  // Weighting only date-filtered lineitem queries should make lineitem's
  // date column the first pick.
  std::vector<advisor::WeightedQuery> skewed = queries_;
  const catalog::ColumnId shipdate =
      env_->catalog->ResolveColumn("lineitem", "l_shipdate");
  for (auto& wq : skewed) {
    wq.weight = 0.001;
    for (const auto& f : wq.query->filters) {
      if (f.column == shipdate) wq.weight = 1000.0;
    }
  }
  partition::PartitionAdvisor advisor(env_->cost_model.get());
  partition::PartitionTuningOptions options;
  options.max_partitioned_tables = 1;
  const auto result = advisor.Tune(skewed, options);
  ASSERT_EQ(result.scheme.columns.size(), 1u);
  EXPECT_EQ(result.scheme.columns.begin()->second, shipdate);
}

// --- Query Store persistence. ---

TEST(QueryStore, JsonEscapeRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te'f\r";
  auto back = workload::JsonUnescape(workload::JsonEscape(nasty));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, nasty);
}

TEST(QueryStore, JsonUnescapeErrors) {
  EXPECT_FALSE(workload::JsonUnescape("dangling\\").ok());
  EXPECT_FALSE(workload::JsonUnescape("\\q").ok());
  EXPECT_FALSE(workload::JsonUnescape("\\u12").ok());
  EXPECT_TRUE(workload::JsonUnescape("\\u0041").ok());
}

TEST(QueryStore, SaveLoadRoundTripPreservesCostsAndTags) {
  workload::GeneratorOptions gen;
  gen.instances_per_template = 2;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  const std::string jsonl = workload::SaveQueryStore(*env.workload);

  workload::Workload reloaded(env.workload->env());
  auto loaded = workload::LoadQueryStore(jsonl, &reloaded);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(static_cast<size_t>(*loaded), env.workload->size());
  for (size_t i = 0; i < reloaded.size(); ++i) {
    EXPECT_EQ(reloaded.query(i).sql, env.workload->query(i).sql);
    EXPECT_NEAR(reloaded.query(i).base_cost, env.workload->query(i).base_cost,
                env.workload->query(i).base_cost * 1e-5);
    EXPECT_EQ(reloaded.query(i).tag, env.workload->query(i).tag);
    EXPECT_EQ(reloaded.query(i).template_hash,
              env.workload->query(i).template_hash);
  }
}

TEST(QueryStore, LoadRejectsMalformedLines) {
  workload::GeneratorOptions gen;
  gen.instances_per_template = 1;
  gen.max_templates = 1;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  workload::Workload w(env.workload->env());
  EXPECT_FALSE(workload::LoadQueryStore("{\"cost\": 1}", &w).ok());
  EXPECT_FALSE(workload::LoadQueryStore("{\"sql\": \"SELECT\", \"cost\": 1}", &w).ok());
  EXPECT_FALSE(
      workload::LoadQueryStore("{\"sql\": \"SELECT * FROM lineitem\"}", &w).ok());
}

TEST(QueryStore, BlankLinesIgnored) {
  workload::GeneratorOptions gen;
  gen.instances_per_template = 1;
  gen.max_templates = 2;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  const std::string jsonl = "\n" + workload::SaveQueryStore(*env.workload) + "\n\n";
  workload::Workload w(env.workload->env());
  auto loaded = workload::LoadQueryStore(jsonl, &w);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 2);
}

}  // namespace
}  // namespace isum
