// Tests for the drill-down reporting extension (§10 interpretability).

#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "eval/drilldown.h"
#include "eval/pipeline.h"
#include "workload/workload_factory.h"

namespace isum::eval {
namespace {

class DrilldownTest : public ::testing::Test {
 protected:
  DrilldownTest() {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 3;
    env_ = workload::MakeTpch(gen);
    compressed_ = core::Isum(env_->workload.get()).Compress(6);
    advisor::TuningOptions tuning;
    tuning.max_indexes = 10;
    result_ = RunPipeline(*env_->workload, compressed_,
                          MakeDtaTuner(*env_->workload, tuning), "ISUM");
  }

  const workload::Workload& W() { return *env_->workload; }

  std::optional<workload::GeneratedWorkload> env_;
  workload::CompressedWorkload compressed_;
  EvaluationResult result_;
};

TEST_F(DrilldownTest, EntriesMatchCompressedWorkload) {
  const DrilldownReport report =
      BuildDrilldown(W(), compressed_, result_.tuning.configuration);
  ASSERT_EQ(report.entries.size(), compressed_.size());
  for (size_t i = 0; i < report.entries.size(); ++i) {
    EXPECT_EQ(report.entries[i].query_index,
              compressed_.entries[i].query_index);
    EXPECT_DOUBLE_EQ(report.entries[i].weight, compressed_.entries[i].weight);
  }
}

TEST_F(DrilldownTest, CostsConsistentWithConfiguration) {
  const DrilldownReport report =
      BuildDrilldown(W(), compressed_, result_.tuning.configuration);
  for (const DrilldownEntry& entry : report.entries) {
    EXPECT_GT(entry.cost_before, 0.0);
    EXPECT_LE(entry.cost_after, entry.cost_before + 1e-6);
  }
  EXPECT_GE(report.compressed_improvement_percent, 0.0);
  EXPECT_LE(report.compressed_improvement_percent, 100.0);
}

TEST_F(DrilldownTest, EveryInputQueryAssignedOrUnrepresented) {
  const DrilldownReport report =
      BuildDrilldown(W(), compressed_, result_.tuning.configuration);
  std::set<size_t> accounted;
  for (const auto& entry : report.entries) {
    accounted.insert(entry.query_index);
    for (const auto& rep : entry.represents) {
      EXPECT_TRUE(accounted.insert(rep.query_index).second)
          << "query assigned twice";
      EXPECT_GT(rep.similarity, 0.0);
      EXPECT_LE(rep.similarity, 1.0);
    }
  }
  for (size_t q : report.unrepresented) {
    EXPECT_TRUE(accounted.insert(q).second);
  }
  EXPECT_EQ(accounted.size(), W().size());
}

TEST_F(DrilldownTest, SameTemplateInstancesFollowTheirRepresentative) {
  // Instances sharing a template with a selected query must be assigned to
  // it with very high similarity (identical features).
  const DrilldownReport report =
      BuildDrilldown(W(), compressed_, result_.tuning.configuration);
  for (const auto& entry : report.entries) {
    const uint64_t tmpl = W().query(entry.query_index).template_hash;
    for (const auto& rep : entry.represents) {
      if (W().query(rep.query_index).template_hash == tmpl) {
        EXPECT_GT(rep.similarity, 0.9);
      }
    }
  }
}

TEST_F(DrilldownTest, RepresentsSortedBySimilarity) {
  const DrilldownReport report =
      BuildDrilldown(W(), compressed_, result_.tuning.configuration);
  for (const auto& entry : report.entries) {
    for (size_t i = 1; i < entry.represents.size(); ++i) {
      EXPECT_GE(entry.represents[i - 1].similarity,
                entry.represents[i].similarity);
    }
  }
}

TEST_F(DrilldownTest, IndexesUsedComeFromConfiguration) {
  const DrilldownReport report =
      BuildDrilldown(W(), compressed_, result_.tuning.configuration);
  std::set<std::string> config_names;
  for (const engine::Index& index : result_.tuning.configuration.indexes()) {
    config_names.insert(index.DebugName(*env_->catalog));
  }
  bool any_used = false;
  for (const auto& entry : report.entries) {
    for (const std::string& name : entry.indexes_used) {
      EXPECT_TRUE(config_names.contains(name)) << name;
      any_used = true;
    }
  }
  EXPECT_TRUE(any_used);
}

TEST_F(DrilldownTest, TextRenderingMentionsKeyFacts) {
  const DrilldownReport report =
      BuildDrilldown(W(), compressed_, result_.tuning.configuration);
  const std::string text = report.ToString(W());
  EXPECT_NE(text.find("Drill-down"), std::string::npos);
  EXPECT_NE(text.find("represents"), std::string::npos);
  EXPECT_NE(text.find("uses:"), std::string::npos);
}

TEST_F(DrilldownTest, HighThresholdLeavesQueriesUnrepresented) {
  const DrilldownReport strict = BuildDrilldown(
      W(), compressed_, result_.tuning.configuration, /*min_similarity=*/0.99);
  const DrilldownReport lax = BuildDrilldown(
      W(), compressed_, result_.tuning.configuration, /*min_similarity=*/0.0);
  EXPECT_GT(strict.unrepresented.size(), 0u);
  EXPECT_GE(strict.unrepresented.size(), lax.unrepresented.size());
}

TEST_F(DrilldownTest, EmptyCompressedWorkloadYieldsEmptyReport) {
  const DrilldownReport report = BuildDrilldown(
      W(), workload::CompressedWorkload{}, result_.tuning.configuration);
  EXPECT_TRUE(report.entries.empty());
  EXPECT_TRUE(report.unrepresented.empty());
}

}  // namespace
}  // namespace isum::eval
