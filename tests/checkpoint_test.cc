// Tests for crash-safe checkpoint/resume (docs/ROBUSTNESS.md): the
// isum-ckpt-v1 container format, epoch rotation and fallback, the
// selection and enumeration snapshots, what-if cache export/import, the
// `after` fault-spec field, and the chaos sweep proper — kill the run at
// every round boundary and assert the resumed output is bit-identical to
// an uninterrupted one.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "advisor/advisor.h"
#include "common/checkpoint.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "core/checkpointing.h"
#include "core/isum.h"
#include "engine/what_if.h"
#include "tools/tracecat/tracecat.h"
#include "workload/workload_factory.h"

namespace isum {
namespace {

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// A per-test checkpoint base path under the gtest temp dir, with any
/// epoch files a previous run of the same test left behind removed (a
/// stale matching lineage would silently turn a fresh run into a resume).
std::string FreshCkptBase(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "isum_ckpt_test";
  std::filesystem::create_directories(dir);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind(name + ".", 0) == 0) {
      std::filesystem::remove_all(entry.path());
    }
  }
  return (dir / name).string();
}

// --- Container format ---

TEST(CheckpointFormatTest, RoundTripPreservesEveryBit) {
  CheckpointWriter writer;
  writer.BeginSection(7);
  writer.AppendU64(0);
  writer.AppendU64(~0ull);
  writer.AppendF64(-0.0);
  writer.AppendF64(std::numeric_limits<double>::quiet_NaN());
  writer.AppendF64(5e-324);  // smallest denormal
  writer.AppendString(std::string_view("a\0b", 3));
  writer.AppendU64Vector({1, 2, 3});
  writer.AppendF64Vector({0.1, -1e308});
  writer.EndSection();
  writer.BeginSection(9);
  writer.AppendU64(42);
  writer.EndSection();

  StatusOr<CheckpointReader> reader = CheckpointReader::Parse(writer.Serialize());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE(reader->HasSection(7));
  EXPECT_TRUE(reader->HasSection(9));
  EXPECT_FALSE(reader->HasSection(8));
  EXPECT_EQ(reader->SectionIds(), (std::vector<uint32_t>{7, 9}));
  EXPECT_EQ(reader->SectionSize(9), 8u);

  StatusOr<CheckpointCursor> cursor = reader->Section(7);
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(cursor->ReadU64().value(), 0u);
  EXPECT_EQ(cursor->ReadU64().value(), ~0ull);
  EXPECT_EQ(Bits(cursor->ReadF64().value()), Bits(-0.0));
  EXPECT_EQ(Bits(cursor->ReadF64().value()),
            Bits(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(Bits(cursor->ReadF64().value()), Bits(5e-324));
  EXPECT_EQ(cursor->ReadString().value(), std::string("a\0b", 3));
  EXPECT_EQ(cursor->ReadU64Vector().value(), (std::vector<uint64_t>{1, 2, 3}));
  const std::vector<double> doubles = cursor->ReadF64Vector().value();
  ASSERT_EQ(doubles.size(), 2u);
  EXPECT_EQ(Bits(doubles[0]), Bits(0.1));
  EXPECT_EQ(Bits(doubles[1]), Bits(-1e308));
  EXPECT_TRUE(cursor->AtEnd());
  // Reading past the end is an error, not UB.
  EXPECT_FALSE(cursor->ReadU64().ok());
}

TEST(CheckpointFormatTest, EveryTruncationIsRejected) {
  CheckpointWriter writer;
  writer.BeginSection(1);
  writer.AppendU64Vector({10, 20, 30});
  writer.EndSection();
  const std::string image = writer.Serialize();
  // A torn tail of any length — including an empty file — must parse to a
  // clean error, never to stale-looking data.
  for (size_t len = 0; len < image.size(); ++len) {
    StatusOr<CheckpointReader> reader =
        CheckpointReader::Parse(image.substr(0, len));
    EXPECT_FALSE(reader.ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST(CheckpointFormatTest, EverySingleByteFlipIsRejected) {
  CheckpointWriter writer;
  writer.BeginSection(1);
  writer.AppendU64(123);
  writer.AppendF64(4.5);
  writer.EndSection();
  const std::string image = writer.Serialize();
  for (size_t i = 0; i < image.size(); ++i) {
    std::string corrupt = image;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    StatusOr<CheckpointReader> reader = CheckpointReader::Parse(corrupt);
    EXPECT_FALSE(reader.ok()) << "flip at byte " << i << " parsed";
  }
}

TEST(CheckpointFormatTest, TrailingGarbageIsRejected) {
  CheckpointWriter writer;
  writer.BeginSection(1);
  writer.AppendU64(1);
  writer.EndSection();
  StatusOr<CheckpointReader> reader =
      CheckpointReader::Parse(writer.Serialize() + "x");
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kParseError);
}

TEST(CheckpointFormatTest, VersionMismatchIsRejectedEvenWithValidCrc) {
  CheckpointWriter writer;
  writer.BeginSection(1);
  writer.AppendU64(1);
  writer.EndSection();
  std::string image = writer.Serialize();
  // Patch the format version (u32 right after the 12-byte magic) to 2 and
  // re-sign the trailing file CRC so only the version check can reject it.
  image[12] = 2;
  const uint32_t crc = Crc32(image.data() + 12, image.size() - 16);
  std::memcpy(image.data() + image.size() - 4, &crc, sizeof(crc));
  StatusOr<CheckpointReader> reader = CheckpointReader::Parse(std::move(image));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kParseError);
}

// --- Epoch store ---

CheckpointWriter OneValueCheckpoint(uint64_t value) {
  CheckpointWriter writer;
  writer.BeginSection(1);
  writer.AppendU64(value);
  writer.EndSection();
  return writer;
}

uint64_t FirstValue(CheckpointReader& reader) {
  return reader.Section(1).value().ReadU64().value();
}

TEST(CheckpointStoreTest, RotatesEpochsAndKeepsTwoNewest) {
  const std::string base = FreshCkptBase("store_rotate");
  CheckpointStore store(base, 0xabcdu);
  const uint64_t e0 = store.next_epoch();
  ASSERT_TRUE(store.WriteEpoch(OneValueCheckpoint(10)).ok());
  const uint64_t e1 = store.next_epoch();
  ASSERT_TRUE(store.WriteEpoch(OneValueCheckpoint(20)).ok());
  const uint64_t e2 = store.next_epoch();
  ASSERT_TRUE(store.WriteEpoch(OneValueCheckpoint(30)).ok());
  EXPECT_FALSE(std::filesystem::exists(store.EpochPath(e0)));
  EXPECT_TRUE(std::filesystem::exists(store.EpochPath(e1)));
  EXPECT_TRUE(std::filesystem::exists(store.EpochPath(e2)));

  StatusOr<CheckpointReader> latest = store.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(FirstValue(*latest), 30u);
  EXPECT_EQ(store.loaded_epoch(), e2);
}

TEST(CheckpointStoreTest, FallsBackPastTornNewestEpoch) {
  const std::string base = FreshCkptBase("store_fallback");
  uint64_t good_epoch = 0;
  uint64_t torn_epoch = 0;
  {
    CheckpointStore store(base, 0xabcdu);
    good_epoch = store.next_epoch();
    ASSERT_TRUE(store.WriteEpoch(OneValueCheckpoint(1)).ok());
    torn_epoch = store.next_epoch();
    ASSERT_TRUE(store.WriteEpoch(OneValueCheckpoint(2)).ok());
    // Tear the newest epoch the way a crash mid-write-then-power-cut
    // would: keep only a prefix of its bytes.
    const std::string torn_path = store.EpochPath(torn_epoch);
    const std::string bytes = ReadFileToString(torn_path).value();
    ASSERT_TRUE(
        WriteFileAtomic(torn_path, std::string_view(bytes).substr(0, 9)).ok());
  }
  CheckpointStore store(base, 0xabcdu);
  StatusOr<CheckpointReader> latest = store.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(FirstValue(*latest), 1u);
  EXPECT_EQ(store.loaded_epoch(), good_epoch);
  // The next write does not reuse the torn epoch's number.
  EXPECT_GT(store.next_epoch(), torn_epoch);
}

TEST(CheckpointStoreTest, LineagesAreIsolatedByFingerprint) {
  const std::string base = FreshCkptBase("store_lineage");
  CheckpointStore store(base, 0x1111u);
  ASSERT_TRUE(store.WriteEpoch(OneValueCheckpoint(7)).ok());
  // Same base path, different work-unit fingerprint: nothing to resume.
  CheckpointStore other(base, 0x2222u);
  EXPECT_EQ(other.LoadLatest().status().code(), StatusCode::kNotFound);
}

TEST(CheckpointStoreTest, CreatesMissingParentDirectories) {
  // "--checkpoint=ck/run" on a fresh machine: without the store creating
  // ck/, every best-effort epoch write fails silently and a later "resume"
  // quietly starts from scratch.
  const std::string base =
      FreshCkptBase("store_mkdir") + ".d/nested/deeper/run";
  CheckpointStore store(base, 0xABCDu);
  ASSERT_TRUE(store.WriteEpoch(OneValueCheckpoint(42)).ok());
  CheckpointStore reopened(base, 0xABCDu);
  auto reader = reopened.LoadLatest();
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
}

// --- Selection snapshots ---

TEST(SelectionSnapshotTest, RoundTripsThroughStore) {
  const std::string base = FreshCkptBase("sel_roundtrip");
  core::SelectionSnapshot snapshot;
  snapshot.fingerprint = 111;
  snapshot.selected = {4, 1, 9};
  snapshot.benefits = {0.5, 0.25, 0.125};
  snapshot.stop_reason = StopReason::kDeadline;
  CheckpointWriter writer;
  core::EncodeSelectionSnapshot(snapshot, &writer);
  CheckpointStore store(base, snapshot.fingerprint);
  ASSERT_TRUE(store.WriteEpoch(writer).ok());

  StatusOr<core::SelectionSnapshot> loaded =
      core::LoadSelectionSnapshot(store, snapshot.fingerprint);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->selected, snapshot.selected);
  ASSERT_EQ(loaded->benefits.size(), snapshot.benefits.size());
  for (size_t i = 0; i < snapshot.benefits.size(); ++i) {
    EXPECT_EQ(Bits(loaded->benefits[i]), Bits(snapshot.benefits[i]));
  }
  EXPECT_FALSE(loaded->done);
  EXPECT_EQ(loaded->stop_reason, StopReason::kDeadline);

  // A different expected fingerprint must refuse the payload outright.
  EXPECT_EQ(core::LoadSelectionSnapshot(store, 222).status().code(),
            StatusCode::kNotFound);
}

TEST(SelectionSnapshotTest, InconsistentPayloadIsAParseError) {
  const std::string base = FreshCkptBase("sel_inconsistent");
  // Hand-build a snapshot whose meta claims 5 rounds but whose ids section
  // holds 2 — and one with an out-of-range stop reason.
  const auto write_meta = [&](uint64_t rounds, uint64_t reason) {
    CheckpointWriter writer;
    writer.BeginSection(core::kSelectionMetaSection);
    writer.AppendU64(111);
    writer.AppendU64(0);
    writer.AppendU64(reason);
    writer.AppendU64(rounds);
    writer.EndSection();
    writer.BeginSection(core::kSelectionIdsSection);
    writer.AppendU64Vector({3, 4});
    writer.EndSection();
    writer.BeginSection(core::kSelectionBenefitsSection);
    writer.AppendF64Vector({1.0, 2.0});
    writer.EndSection();
    return writer;
  };
  CheckpointStore bad_rounds(base + "_rounds", 111);
  ASSERT_TRUE(bad_rounds.WriteEpoch(write_meta(5, 0)).ok());
  EXPECT_EQ(core::LoadSelectionSnapshot(bad_rounds, 111).status().code(),
            StatusCode::kParseError);
  CheckpointStore bad_reason(base + "_reason", 111);
  ASSERT_TRUE(bad_reason.WriteEpoch(write_meta(2, 99)).ok());
  EXPECT_EQ(core::LoadSelectionSnapshot(bad_reason, 111).status().code(),
            StatusCode::kParseError);
}

// --- `after` fault-spec field ---

class FaultAfterTest : public ::testing::Test {
 protected:
  ~FaultAfterTest() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultAfterTest, RuleStaysDormantForFirstNInvocations) {
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("{\"site\":\"s\",\"kind\":\"error\",\"p\":1.0,"
                             "\"after\":3}")
                  .ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(CheckFault("s").ok()) << "invocation " << i;
  }
  // Fires deterministically at exactly invocation N and stays on.
  EXPECT_FALSE(CheckFault("s").ok());
  EXPECT_FALSE(CheckFault("s").ok());
  // Other sites never consume this rule's invocation stream.
  EXPECT_TRUE(CheckFault("unrelated").ok());
}

TEST_F(FaultAfterTest, DefaultAfterIsZero) {
  ASSERT_TRUE(
      FaultInjector::Global()
          .Configure("{\"site\":\"s\",\"kind\":\"error\",\"p\":1.0}")
          .ok());
  EXPECT_FALSE(CheckFault("s").ok());
}

TEST_F(FaultAfterTest, NegativeAfterIsRejected) {
  const Status status = FaultInjector::Global().Configure(
      "{\"site\":\"s\",\"kind\":\"error\",\"p\":1.0,\"after\":-1}");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(FaultInjector::Armed());
}

// --- What-if cache export/import ---

TEST(WhatIfCacheCheckpointTest, ExportImportServesIdenticalCosts) {
  workload::GeneratorOptions gen;
  gen.instances_per_template = 1;
  std::optional<workload::GeneratedWorkload> env = workload::MakeTpch(gen);
  const size_t n = std::min<size_t>(env->workload->size(), 6);
  ASSERT_GT(n, 0u);

  engine::WhatIfOptimizer source(env->cost_model.get());
  std::vector<const sql::BoundQuery*> queries;
  std::unordered_map<const void*, uint64_t> query_ids;
  std::vector<double> costs;
  for (size_t i = 0; i < n; ++i) {
    const sql::BoundQuery* q = &env->workload->query(i).bound;
    queries.push_back(q);
    query_ids.emplace(q, static_cast<uint64_t>(i));
    costs.push_back(source.Cost(*q, engine::Configuration()));
  }
  std::vector<engine::WhatIfOptimizer::CacheEntry> entries =
      source.ExportCache(query_ids);
  EXPECT_EQ(entries.size(), n);
  // Out-of-range ids in a (hand-damaged) checkpoint are skipped, not UB.
  entries.push_back({/*query_id=*/999, /*config_hash=*/7, /*cost=*/1.0});

  engine::WhatIfOptimizer seeded(env->cost_model.get());
  seeded.ImportCache(entries, queries);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(Bits(seeded.Cost(*queries[i], engine::Configuration())),
              Bits(costs[i]));
  }
  // Every answer came from the imported cache: zero optimizer work.
  EXPECT_EQ(seeded.optimizer_calls(), 0u);
}

// --- Chaos sweep: kill at every round boundary, resume, compare ---

class CheckpointResumeTest : public ::testing::Test {
 protected:
  CheckpointResumeTest() {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 2;
    env_ = workload::MakeTpch(gen);
  }
  ~CheckpointResumeTest() override {
    FaultInjector::Global().Reset();
    InstallAmbientCheckpoint(CheckpointConfig());
  }

  /// Arms a deterministic kill at round `round` of `site`.
  static void KillAtRound(const char* site, size_t round) {
    const std::string spec = std::string("{\"site\":\"") + site +
                             "\",\"kind\":\"error\",\"p\":1.0,\"after\":" +
                             std::to_string(round) + "}";
    ASSERT_TRUE(FaultInjector::Global().Configure(spec).ok());
  }

  static void ExpectSameEntries(const workload::CompressedWorkload& got,
                                const workload::CompressedWorkload& want) {
    ASSERT_EQ(got.entries.size(), want.entries.size());
    for (size_t i = 0; i < want.entries.size(); ++i) {
      EXPECT_EQ(got.entries[i].query_index, want.entries[i].query_index)
          << "round " << i;
      EXPECT_EQ(Bits(got.entries[i].weight), Bits(want.entries[i].weight))
          << "round " << i;
      EXPECT_EQ(Bits(got.entries[i].selection_benefit),
                Bits(want.entries[i].selection_benefit))
          << "round " << i;
    }
  }

  std::optional<workload::GeneratedWorkload> env_;
};

TEST_F(CheckpointResumeTest, CompressionResumesBitIdenticalAtEveryBoundary) {
  struct Variant {
    const char* name;
    core::SelectionAlgorithm algorithm;
    int threads;
  };
  const Variant variants[] = {
      {"summary_t1", core::SelectionAlgorithm::kSummaryFeatures, 1},
      {"allpairs_t1", core::SelectionAlgorithm::kAllPairs, 1},
      {"allpairs_t8", core::SelectionAlgorithm::kAllPairs, 8},
  };
  const size_t k = 8;
  for (const Variant& variant : variants) {
    core::IsumOptions base;
    base.algorithm = variant.algorithm;
    base.num_threads = variant.threads;
    const workload::CompressedWorkload full =
        core::Isum(&*env_->workload, base).Compress(k);
    ASSERT_EQ(full.stop_reason, StopReason::kComplete);
    ASSERT_GT(full.entries.size(), 2u);

    for (size_t round = 1; round < full.entries.size(); ++round) {
      core::IsumOptions options = base;
      options.checkpoint.path = FreshCkptBase(
          std::string("kill_") + variant.name + "_" + std::to_string(round));
      options.checkpoint.every_rounds = 1;

      KillAtRound("compress.select", round);
      const workload::CompressedWorkload killed =
          core::Isum(&*env_->workload, options).Compress(k);
      EXPECT_EQ(killed.stop_reason, StopReason::kFault)
          << variant.name << " round " << round;
      ASSERT_EQ(killed.entries.size(), round);
      FaultInjector::Global().Reset();

      const workload::CompressedWorkload resumed =
          core::Isum(&*env_->workload, options).Compress(k);
      EXPECT_EQ(resumed.stop_reason, StopReason::kComplete)
          << variant.name << " round " << round;
      ExpectSameEntries(resumed, full);
    }
  }
}

TEST_F(CheckpointResumeTest, ResumedCompleteRunIsStillBitIdentical) {
  // Resuming after the run already finished (checkpoint marked done) must
  // reproduce the final result without rerunning selection.
  const size_t k = 6;
  core::IsumOptions options;
  options.checkpoint.path = FreshCkptBase("resume_done");
  options.checkpoint.every_rounds = 1;
  const workload::CompressedWorkload first =
      core::Isum(&*env_->workload, options).Compress(k);
  ASSERT_EQ(first.stop_reason, StopReason::kComplete);
  const workload::CompressedWorkload again =
      core::Isum(&*env_->workload, options).Compress(k);
  EXPECT_EQ(again.stop_reason, StopReason::kComplete);
  ExpectSameEntries(again, first);
}

TEST_F(CheckpointResumeTest, CorruptEpochFallsBackAndStillMatches) {
  // Corrupting the newest epoch between kill and resume exercises the
  // fallback path end to end: the previous epoch restores a shorter prefix
  // and the rerun must still converge to the identical result.
  const size_t k = 8;
  const workload::CompressedWorkload full =
      core::Isum(&*env_->workload).Compress(k);
  ASSERT_GT(full.entries.size(), 3u);

  core::IsumOptions options;
  options.checkpoint.path = FreshCkptBase("corrupt_fallback");
  options.checkpoint.every_rounds = 1;
  KillAtRound("compress.select", 3);
  (void)core::Isum(&*env_->workload, options).Compress(k);
  FaultInjector::Global().Reset();

  // Flip one byte in the newest .compress epoch file.
  const std::filesystem::path dir =
      std::filesystem::path(options.checkpoint.path).parent_path();
  std::filesystem::path newest;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind("corrupt_fallback.compress.", 0) == 0 &&
        (newest.empty() || file > newest.filename().string())) {
      newest = entry.path();
    }
  }
  ASSERT_FALSE(newest.empty());
  std::string bytes = ReadFileToString(newest.string()).value();
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  ASSERT_TRUE(WriteFileAtomic(newest.string(), bytes).ok());

  const workload::CompressedWorkload resumed =
      core::Isum(&*env_->workload, options).Compress(k);
  EXPECT_EQ(resumed.stop_reason, StopReason::kComplete);
  ExpectSameEntries(resumed, full);
}

TEST_F(CheckpointResumeTest, EnumerationResumesBitIdentical) {
  std::vector<advisor::WeightedQuery> queries;
  for (size_t i = 0; i < env_->workload->size(); ++i) {
    queries.push_back({&env_->workload->query(i).bound, 1.0});
  }
  advisor::TuningOptions base;
  base.max_indexes = 5;
  advisor::DtaStyleAdvisor advisor(env_->cost_model.get());
  const advisor::TuningResult full = advisor.Tune(queries, base);
  ASSERT_EQ(full.stop_reason, StopReason::kComplete);
  ASSERT_GE(full.configuration.size(), 2u);

  for (size_t round = 1; round < full.configuration.size(); ++round) {
    advisor::TuningOptions options = base;
    options.checkpoint.path =
        FreshCkptBase("enum_kill_" + std::to_string(round));
    options.checkpoint.every_rounds = 1;

    KillAtRound("advisor.enumerate", round);
    const advisor::TuningResult killed = advisor.Tune(queries, options);
    EXPECT_EQ(killed.stop_reason, StopReason::kFault) << "round " << round;
    EXPECT_EQ(killed.configuration.size(), round);
    FaultInjector::Global().Reset();

    const advisor::TuningResult resumed = advisor.Tune(queries, options);
    EXPECT_EQ(resumed.stop_reason, StopReason::kComplete) << "round " << round;
    EXPECT_EQ(resumed.configuration.StableHash(),
              full.configuration.StableHash())
        << "round " << round;
    EXPECT_EQ(Bits(resumed.initial_cost), Bits(full.initial_cost));
    EXPECT_EQ(Bits(resumed.final_cost), Bits(full.final_cost))
        << "round " << round;
    EXPECT_EQ(resumed.configurations_explored, full.configurations_explored)
        << "round " << round;
  }
}

// --- tracecat ckpt ---

TEST_F(CheckpointResumeTest, TracecatInspectsWrittenEpochs) {
  core::IsumOptions options;
  options.checkpoint.path = FreshCkptBase("inspect");
  options.checkpoint.every_rounds = 1;
  const workload::CompressedWorkload out =
      core::Isum(&*env_->workload, options).Compress(5);
  ASSERT_EQ(out.stop_reason, StopReason::kComplete);

  const std::filesystem::path dir =
      std::filesystem::path(options.checkpoint.path).parent_path();
  std::string epoch_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind("inspect.compress.", 0) == 0) {
      epoch_path = entry.path().string();
      break;
    }
  }
  ASSERT_FALSE(epoch_path.empty());

  StatusOr<std::string> report = tracecat::InspectCheckpoint(epoch_path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("isum-ckpt-v1"), std::string::npos);
  EXPECT_NE(report->find("selection snapshot"), std::string::npos);
  EXPECT_NE(report->find("round(s)"), std::string::npos);

  // Verification is the same decode: a damaged file errors instead.
  std::string bytes = ReadFileToString(epoch_path).value();
  bytes[20] = static_cast<char>(bytes[20] ^ 0xff);
  const std::string damaged = epoch_path + ".damaged";
  ASSERT_TRUE(WriteFileAtomic(damaged, bytes).ok());
  EXPECT_FALSE(tracecat::InspectCheckpoint(damaged).ok());
  EXPECT_EQ(tracecat::InspectCheckpoint(damaged + ".missing").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace isum
