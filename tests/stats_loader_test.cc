// Tests for the JSONL column-statistics loader.

#include <gtest/gtest.h>

#include "catalog/schema_builder.h"
#include "stats/stats_loader.h"

namespace isum::stats {
namespace {

class StatsLoaderTest : public ::testing::Test {
 protected:
  StatsLoaderTest() : stats_(&cat_) {
    catalog::SchemaBuilder b(&cat_);
    b.Table("orders", 1'000'000)
        .Key("id", catalog::ColumnType::kInt)
        .Col("odate", catalog::ColumnType::kDate)
        .Col("status", catalog::ColumnType::kChar, 1);
  }

  catalog::Catalog cat_;
  StatsManager stats_;
};

TEST_F(StatsLoaderTest, LoadsUniformAndZipf) {
  const std::string jsonl =
      "{\"table\": \"orders\", \"column\": \"odate\", \"distinct\": 2000, "
      "\"min\": 18000, \"max\": 20000}\n"
      "{\"table\": \"orders\", \"column\": \"status\", \"distinct\": 4, "
      "\"min\": 0, \"max\": 4, \"distribution\": \"zipf\", \"skew\": 1.5}\n";
  auto loaded = LoadColumnStats(jsonl, cat_, &stats_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 2);

  const catalog::ColumnId odate = cat_.ResolveColumn("orders", "odate");
  EXPECT_TRUE(stats_.HasStats(odate));
  // Uniform range selectivity ~ proportional.
  EXPECT_NEAR(stats_.SelectivityRange(odate, 18000.0, 19000.0), 0.5, 0.06);
  EXPECT_NEAR(stats_.DistinctCount(odate), 2000.0, 600.0);

  // Zipf: the hottest status value is much more frequent than 1/4.
  const catalog::ColumnId status = cat_.ResolveColumn("orders", "status");
  double max_eq = 0.0;
  for (int v = 0; v <= 4; ++v) {
    max_eq = std::max(max_eq, stats_.SelectivityEquals(status, v));
  }
  EXPECT_GT(max_eq, 0.4);
}

TEST_F(StatsLoaderTest, DefaultsApplyWhenKeysOmitted) {
  auto loaded = LoadColumnStats(
      "{\"table\": \"orders\", \"column\": \"odate\", \"distinct\": 10, "
      "\"min\": 0, \"max\": 10}",
      cat_, &stats_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 1);
}

TEST_F(StatsLoaderTest, ErrorsAreLoud) {
  EXPECT_FALSE(LoadColumnStats("{\"table\": \"nope\", \"column\": \"x\", "
                               "\"distinct\": 1, \"min\": 0, \"max\": 1}",
                               cat_, &stats_)
                   .ok());
  EXPECT_FALSE(LoadColumnStats("{\"table\": \"orders\", \"column\": \"odate\", "
                               "\"distinct\": 1, \"min\": 5, \"max\": 1}",
                               cat_, &stats_)
                   .ok());
  EXPECT_FALSE(LoadColumnStats("{\"table\": \"orders\", \"column\": \"odate\", "
                               "\"distinct\": 1, \"min\": 0, \"max\": 1, "
                               "\"distribution\": \"pareto\"}",
                               cat_, &stats_)
                   .ok());
  EXPECT_FALSE(LoadColumnStats("{\"column\": \"odate\"}", cat_, &stats_).ok());
}

TEST_F(StatsLoaderTest, DeterministicPerSeed) {
  const std::string line =
      "{\"table\": \"orders\", \"column\": \"odate\", \"distinct\": 500, "
      "\"min\": 0, \"max\": 1000}";
  StatsManager a(&cat_), b(&cat_);
  ASSERT_TRUE(LoadColumnStats(line, cat_, &a, 7).ok());
  ASSERT_TRUE(LoadColumnStats(line, cat_, &b, 7).ok());
  const catalog::ColumnId odate = cat_.ResolveColumn("orders", "odate");
  EXPECT_DOUBLE_EQ(a.DistinctCount(odate), b.DistinctCount(odate));
  EXPECT_DOUBLE_EQ(a.ValueAtQuantile(odate, 0.5), b.ValueAtQuantile(odate, 0.5));
}

}  // namespace
}  // namespace isum::stats
