// Unit tests for src/stats: histograms, column stats, the synthetic data
// generator, and the StatsManager estimation API.

#include <gtest/gtest.h>

#include <cmath>

#include "catalog/schema_builder.h"
#include "common/rng.h"
#include "stats/data_generator.h"
#include "stats/stats_manager.h"

namespace isum::stats {
namespace {

std::vector<double> UniformSample(int n, double lo, double hi) {
  std::vector<double> s;
  Rng rng(1);
  for (int i = 0; i < n; ++i) s.push_back(rng.NextDouble(lo, hi));
  return s;
}

TEST(Histogram, BucketRowsSumToTotal) {
  Histogram h = Histogram::FromSample(UniformSample(4000, 0, 100), 32, 1e6);
  double rows = 0.0;
  for (const auto& b : h.buckets()) rows += b.rows;
  EXPECT_NEAR(rows, 1e6, 1.0);
}

TEST(Histogram, RangeSelectivityOfFullDomainIsOne) {
  Histogram h = Histogram::FromSample(UniformSample(4000, 0, 100), 32, 1e6);
  EXPECT_NEAR(h.SelectivityRange(std::nullopt, std::nullopt), 1.0, 1e-9);
  EXPECT_NEAR(h.SelectivityRange(-10.0, 200.0), 1.0, 1e-3);
}

TEST(Histogram, RangeSelectivityProportionalForUniform) {
  Histogram h = Histogram::FromSample(UniformSample(8000, 0, 100), 64, 1e6);
  EXPECT_NEAR(h.SelectivityRange(0.0, 25.0), 0.25, 0.03);
  EXPECT_NEAR(h.SelectivityRange(40.0, 60.0), 0.20, 0.03);
  EXPECT_NEAR(h.SelectivityRange(90.0, std::nullopt), 0.10, 0.03);
}

TEST(Histogram, HalfOpenRanges) {
  Histogram h = Histogram::FromSample(UniformSample(8000, 0, 100), 64, 1e6);
  const double below = h.SelectivityRange(std::nullopt, 30.0);
  const double above = h.SelectivityRange(30.0, std::nullopt);
  EXPECT_NEAR(below + above, 1.0, 0.05);
}

TEST(Histogram, QuantileIsMonotonic) {
  Histogram h = Histogram::FromSample(UniformSample(4000, 0, 1000), 32, 1e6);
  double prev = h.ValueAtQuantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double v = h.ValueAtQuantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Histogram, QuantileInverseOfRangeSelectivity) {
  Histogram h = Histogram::FromSample(UniformSample(8000, 0, 100), 64, 1e6);
  for (double q : {0.1, 0.35, 0.7, 0.9}) {
    const double v = h.ValueAtQuantile(q);
    EXPECT_NEAR(h.SelectivityRange(std::nullopt, v), q, 0.04);
  }
}

TEST(Histogram, EqualitySelectivityUsesBucketDistincts) {
  // 10 distinct values, each ~400 samples.
  std::vector<double> sample;
  Rng rng(2);
  for (int i = 0; i < 4000; ++i) {
    sample.push_back(static_cast<double>(rng.NextUint64(10)));
  }
  Histogram h = Histogram::FromSample(std::move(sample), 16, 1e6);
  EXPECT_NEAR(h.SelectivityEquals(5.0), 0.1, 0.05);
  EXPECT_EQ(h.SelectivityEquals(55.0), 0.0);  // outside domain
}

TEST(Histogram, EmptyHistogramDefaults) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.SelectivityEquals(1.0), 0.0);
  EXPECT_EQ(h.SelectivityRange(0.0, 1.0), 1.0);
}

TEST(ColumnStats, DensityClamped) {
  ColumnStats s;
  s.distinct_count = 4.0;
  EXPECT_DOUBLE_EQ(s.Density(), 0.25);
  s.distinct_count = 0.5;
  EXPECT_DOUBLE_EQ(s.Density(), 1.0);
}

TEST(ColumnStats, FallbacksWithoutHistogram) {
  ColumnStats s;
  s.min_value = 0;
  s.max_value = 100;
  s.distinct_count = 50;
  EXPECT_NEAR(s.SelectivityRange(0.0, 50.0), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.SelectivityEquals(3.0), 0.02);
  EXPECT_DOUBLE_EQ(s.ValueAtQuantile(0.3), 30.0);
}

// --- DataGenerator over all distributions (parameterized sweep). ---

class DataGeneratorDistributions
    : public ::testing::TestWithParam<Distribution> {};

TEST_P(DataGeneratorDistributions, ProducesConsistentStats) {
  Rng rng(3);
  DataGenerator dg;
  ColumnDataSpec spec;
  spec.distribution = GetParam();
  spec.distinct = 500;
  spec.domain_min = 10;
  spec.domain_max = 1000;
  const uint64_t rows = 100000;
  ColumnStats s = dg.Generate(spec, rows, rng);
  EXPECT_DOUBLE_EQ(s.row_count, static_cast<double>(rows));
  EXPECT_GE(s.distinct_count, 1.0);
  EXPECT_FALSE(s.histogram.empty());
  if (GetParam() != Distribution::kKey) {  // keys ignore the domain spec
    EXPECT_GE(s.min_value, spec.domain_min - 1.5);
    EXPECT_LE(s.max_value, spec.domain_max + 1e-9);
    EXPECT_LE(s.distinct_count, 500.0 + 1e-9);
  }
  // Histogram totals match the row count.
  double total = 0.0;
  for (const auto& b : s.histogram.buckets()) total += b.rows;
  EXPECT_NEAR(total, static_cast<double>(rows), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, DataGeneratorDistributions,
                         ::testing::Values(Distribution::kUniform,
                                           Distribution::kZipf,
                                           Distribution::kGaussian,
                                           Distribution::kKey));

TEST(DataGenerator, KeyColumnsAreDenseUnique) {
  Rng rng(4);
  DataGenerator dg;
  ColumnDataSpec spec;
  spec.distribution = Distribution::kKey;
  ColumnStats s = dg.Generate(spec, 12345, rng);
  EXPECT_DOUBLE_EQ(s.distinct_count, 12345.0);
  EXPECT_DOUBLE_EQ(s.min_value, 1.0);
  EXPECT_DOUBLE_EQ(s.max_value, 12345.0);
}

TEST(DataGenerator, ZipfSkewShowsInEqualitySelectivity) {
  Rng rng(5);
  DataGenerator dg(8192, 64);
  ColumnDataSpec zipf;
  zipf.distribution = Distribution::kZipf;
  zipf.zipf_skew = 1.4;
  zipf.distinct = 1000;
  zipf.domain_min = 0;
  zipf.domain_max = 1000;
  ColumnStats s = dg.Generate(zipf, 1000000, rng);
  // The hottest bucket should be much denser than uniform (1/1000).
  double max_eq = 0.0;
  for (const auto& b : s.histogram.buckets()) {
    max_eq = std::max(max_eq, b.rows / std::max(1.0, b.distinct) /
                                  s.row_count);
  }
  EXPECT_GT(max_eq, 0.05);
}

TEST(DataGenerator, DeterministicForEqualSeeds) {
  DataGenerator dg;
  ColumnDataSpec spec;
  spec.distinct = 100;
  Rng r1(9), r2(9);
  ColumnStats a = dg.Generate(spec, 1000, r1);
  ColumnStats b = dg.Generate(spec, 1000, r2);
  EXPECT_EQ(a.distinct_count, b.distinct_count);
  EXPECT_EQ(a.histogram.buckets().size(), b.histogram.buckets().size());
}

// --- StatsManager ---

TEST(StatsManager, ReturnsRegisteredStats) {
  catalog::Catalog cat;
  catalog::SchemaBuilder b(&cat);
  b.Table("t", 1000).Key("id", catalog::ColumnType::kInt).Col("v", catalog::ColumnType::kInt);
  StatsManager sm(&cat);
  const catalog::ColumnId v = cat.ResolveColumn("t", "v");
  ColumnStats s;
  s.row_count = 1000;
  s.distinct_count = 10;
  sm.SetStats(v, s);
  EXPECT_TRUE(sm.HasStats(v));
  EXPECT_DOUBLE_EQ(sm.Density(v), 0.1);
  EXPECT_DOUBLE_EQ(sm.DistinctCount(v), 10.0);
}

TEST(StatsManager, SynthesizesDefaultsFromCatalog) {
  catalog::Catalog cat;
  catalog::SchemaBuilder b(&cat);
  b.Table("t", 1000).Key("id", catalog::ColumnType::kInt).Col("v", catalog::ColumnType::kInt);
  StatsManager sm(&cat);
  const catalog::ColumnId id = cat.ResolveColumn("t", "id");
  const catalog::ColumnId v = cat.ResolveColumn("t", "v");
  EXPECT_FALSE(sm.HasStats(id));
  // Keys default to rows distinct values; non-keys to rows/10.
  EXPECT_DOUBLE_EQ(sm.DistinctCount(id), 1000.0);
  EXPECT_DOUBLE_EQ(sm.DistinctCount(v), 100.0);
  // Defaults are cached (same object back).
  EXPECT_EQ(&sm.GetStats(v), &sm.GetStats(v));
}

}  // namespace
}  // namespace isum::stats
